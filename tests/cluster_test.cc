// Cluster runtime: byte-identity of the multi-node engine with serial
// Ingest at 1/2/4 nodes over loopback and TCP transports, including
// epoch-boundary edge cases; admission-policy semantics of the live push
// path; and the fleet-wide metrics merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "cluster/local_cluster.h"
#include "datacron/engine.h"
#include "obs/metrics.h"
#include "sources/adsb_generator.h"
#include "sources/ais_generator.h"
#include "stream/admission.h"

namespace datacron {
namespace {

DatacronEngine::Config ClusterConfig(std::size_t epoch_size = 128) {
  DatacronEngine::Config cfg;
  cfg.areas.push_back(NamedArea{
      "port_alpha", Polygon::Rectangle(BoundingBox::Of(36, 24, 36.5, 24.5))});
  cfg.sectors.push_back(CapacityMonitor::Sector{
      "aegean", Polygon::Rectangle(BoundingBox::Of(35.0, 23.0, 39.0, 27.0)),
      5});
  cfg.hotspot_window = 10 * kMinute;
  cfg.hotspot.zscore_threshold = 2.0;
  cfg.gap.gap_threshold = 5 * kMinute;
  cfg.synopses.gap_threshold = 5 * kMinute;
  cfg.epoch_size = epoch_size;
  return cfg;
}

/// Mixed AIS + ADS-B replay with an injected silence window, same shape as
/// the in-process shard identity test: gap state, episode flushes and the
/// RDF continuation tables all cross epoch and node boundaries.
std::vector<PositionReport> MixedStream() {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 10;
  fleet.duration = 30 * kMinute;
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  std::vector<PositionReport> ais = ObserveFleet(GenerateAisFleet(fleet), obs);

  AdsbGeneratorConfig air;
  air.region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
  air.num_airports = 3;
  air.num_flights = 5;
  air.duration = 30 * kMinute;
  air.departure_window = 10 * kMinute;
  ObservationConfig air_obs;
  air_obs.fixed_interval_ms = 10 * kSecond;
  std::vector<PositionReport> adsb =
      ObserveFleet(GenerateAdsbTraffic(air), air_obs);

  std::vector<PositionReport> merged;
  merged.reserve(ais.size() + adsb.size());
  merged.insert(merged.end(), ais.begin(), ais.end());
  merged.insert(merged.end(), adsb.begin(), adsb.end());
  std::sort(merged.begin(), merged.end(), ReportTimeOrder());

  const EntityId silenced = merged.front().entity_id;
  const TimestampMs t0 = merged.front().timestamp + 8 * kMinute;
  const TimestampMs t1 = t0 + 15 * kMinute;
  std::erase_if(merged, [&](const PositionReport& r) {
    return r.entity_id == silenced && r.timestamp >= t0 && r.timestamp < t1;
  });
  return merged;
}

struct RunOutputs {
  std::vector<Event> events;
  std::vector<Triple> triples;
  std::vector<Episode> episodes;
  std::size_t critical_points = 0;
  std::size_t reports = 0;
  std::size_t dict_size = 0;
  std::size_t entity_count = 0;
  std::size_t total_points = 0;
};

RunOutputs Snapshot(const DatacronEngine& engine, std::vector<Event> events) {
  RunOutputs run;
  run.events = std::move(events);
  run.triples = engine.triples();
  run.episodes = engine.episodes();
  run.critical_points = engine.critical_points();
  run.reports = engine.reports_ingested();
  run.dict_size = engine.dictionary().size();
  run.entity_count = engine.trajectories().EntityCount();
  run.total_points = engine.trajectories().TotalPoints();
  return run;
}

RunOutputs RunSerial(const std::vector<PositionReport>& stream) {
  DatacronEngine engine(ClusterConfig());
  std::vector<Event> events;
  for (const PositionReport& r : stream) {
    const auto evs = engine.Ingest(r);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  return Snapshot(engine, std::move(events));
}

RunOutputs RunCluster(const std::vector<PositionReport>& stream,
                      std::size_t num_nodes, LocalCluster::Wire wire,
                      std::size_t epoch_size = 128) {
  LocalCluster::Options opts;
  opts.engine = ClusterConfig(epoch_size);
  opts.num_nodes = num_nodes;
  opts.wire = wire;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(opts);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  if (!cluster.ok()) return {};

  Result<std::vector<Event>> events =
      cluster.value()->engine().IngestBatch(stream);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  if (!events.ok()) return {};
  Result<std::vector<Event>> final_events =
      cluster.value()->engine().Finish();
  EXPECT_TRUE(final_events.ok()) << final_events.status().ToString();
  if (!final_events.ok()) return {};

  std::vector<Event> all = std::move(events).value();
  all.insert(all.end(), final_events.value().begin(),
             final_events.value().end());
  RunOutputs run =
      Snapshot(cluster.value()->engine().engine(), std::move(all));
  const Status stop = cluster.value()->Stop();
  EXPECT_TRUE(stop.ok()) << stop.ToString();
  return run;
}

void ExpectIdentical(const RunOutputs& a, const RunOutputs& b) {
  EXPECT_EQ(a.reports, b.reports);
  EXPECT_EQ(a.critical_points, b.critical_points);
  EXPECT_EQ(a.dict_size, b.dict_size);
  EXPECT_EQ(a.entity_count, b.entity_count);
  EXPECT_EQ(a.total_points, b.total_points);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(a.events == b.events);
  ASSERT_EQ(a.triples.size(), b.triples.size());
  EXPECT_TRUE(a.triples == b.triples);
  ASSERT_EQ(a.episodes.size(), b.episodes.size());
  EXPECT_TRUE(a.episodes == b.episodes);
}

TEST(ClusterTest, ByteIdenticalAcrossNodeCountsOverLoopback) {
  const auto stream = MixedStream();
  ASSERT_GT(stream.size(), 1000u);
  const RunOutputs serial = RunSerial(stream);
  ASSERT_FALSE(serial.events.empty());
  ASSERT_FALSE(serial.triples.empty());
  ASSERT_FALSE(serial.episodes.empty());

  for (const std::size_t nodes : {1u, 2u, 4u}) {
    SCOPED_TRACE(nodes);
    const RunOutputs run =
        RunCluster(stream, nodes, LocalCluster::Wire::kLoopback);
    ExpectIdentical(serial, run);
  }
}

TEST(ClusterTest, ByteIdenticalOverTcpSockets) {
  const auto stream = MixedStream();
  const RunOutputs serial = RunSerial(stream);
  for (const std::size_t nodes : {1u, 2u, 4u}) {
    SCOPED_TRACE(nodes);
    const RunOutputs run =
        RunCluster(stream, nodes, LocalCluster::Wire::kTcp);
    ExpectIdentical(serial, run);
  }
}

TEST(ClusterTest, ByteIdenticalAtEpochBoundaryEdgeCases) {
  const auto stream = MixedStream();
  const RunOutputs serial = RunSerial(stream);
  // Epoch size 1 maximizes barrier churn (every report is its own epoch
  // and dictionary delta); 32 leaves most entity state straddling epochs.
  for (const std::size_t epoch_size : {1u, 32u}) {
    SCOPED_TRACE(epoch_size);
    const RunOutputs run = RunCluster(
        stream, 4, LocalCluster::Wire::kLoopback, epoch_size);
    ExpectIdentical(serial, run);
  }
}

TEST(ClusterTest, OneDeltaFramePerNodePerEpochOnBothWires) {
  // The dictionary delta is coalesced into the epoch result frame, so a
  // full run exchanges exactly: 1 hello, 1 flush request, 1 flush result
  // and 1 shutdown per node, plus 1 report batch and 1 result (or
  // watermark) per node per epoch — never anything per report. The frame
  // counters cover both transports, and the output stays byte-identical.
  const auto stream = MixedStream();
  const RunOutputs serial = RunSerial(stream);
  constexpr std::size_t kNodes = 2;
  constexpr std::size_t kEpochSize = 128;
  const std::size_t epochs = (stream.size() + kEpochSize - 1) / kEpochSize;
  obs::Counter* tx = obs::MetricsRegistry::Global().counter("net.tx_frames");
  obs::Counter* rx = obs::MetricsRegistry::Global().counter("net.rx_frames");
  for (const LocalCluster::Wire wire :
       {LocalCluster::Wire::kLoopback, LocalCluster::Wire::kTcp}) {
    SCOPED_TRACE(wire == LocalCluster::Wire::kTcp ? "tcp" : "loopback");
    const std::uint64_t tx_before = tx->Value();
    const std::uint64_t rx_before = rx->Value();
    const RunOutputs run = RunCluster(stream, kNodes, wire, kEpochSize);
    ExpectIdentical(serial, run);
    const std::uint64_t expected = kNodes * (4 + 2 * epochs);
    EXPECT_EQ(tx->Value() - tx_before, expected);
    EXPECT_EQ(rx->Value() - rx_before, expected);
  }
}

TEST(ClusterTest, SplitIngestBatchesMatchOneBatch) {
  // Epoch numbering is global across IngestBatch calls, so feeding the
  // stream in slices must behave exactly like one batch.
  const auto stream = MixedStream();
  const RunOutputs serial = RunSerial(stream);

  LocalCluster::Options opts;
  opts.engine = ClusterConfig();
  opts.num_nodes = 2;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  std::vector<Event> events;
  const std::size_t third = stream.size() / 3;
  const std::span<const PositionReport> all(stream);
  for (const auto slice :
       {all.subspan(0, third), all.subspan(third, third),
        all.subspan(2 * third)}) {
    Result<std::vector<Event>> evs =
        cluster.value()->engine().IngestBatch(slice);
    ASSERT_TRUE(evs.ok()) << evs.status().ToString();
    events.insert(events.end(), evs.value().begin(), evs.value().end());
  }
  Result<std::vector<Event>> final_events = cluster.value()->engine().Finish();
  ASSERT_TRUE(final_events.ok());
  events.insert(events.end(), final_events.value().begin(),
                final_events.value().end());
  ExpectIdentical(serial, Snapshot(cluster.value()->engine().engine(),
                                   std::move(events)));
  ASSERT_TRUE(cluster.value()->Stop().ok());
}

TEST(ClusterTest, FleetMetricsMergeAcrossNodes) {
  const auto stream = MixedStream();
  LocalCluster::Options opts;
  opts.engine = ClusterConfig();
  opts.num_nodes = 3;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());
  ASSERT_TRUE(cluster.value()->engine().IngestBatch(stream).ok());

  Result<std::string> report = cluster.value()->engine().MetricsReport();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // One table covering the whole fleet: every keyed detector (merged
  // across the three nodes) plus the coordinator's global stages.
  for (const char* name :
       {"critical_point_detector", "area_event_detector",
        "loitering_detector", "gap_detector", "speed_anomaly_detector",
        "proximity_detector", "capacity_monitor", "hotspot_detector"}) {
    EXPECT_NE(report.value().find(name), std::string::npos) << name;
  }
  EXPECT_NE(report.value().find("cep-keyed"), std::string::npos);
  EXPECT_NE(report.value().find("cep-global"), std::string::npos);
  ASSERT_TRUE(cluster.value()->Stop().ok());
}

// ---------------------------------------------------------------------
// Admission policy (live push path)
// ---------------------------------------------------------------------

TEST(AdmissionQueueTest, BlockPolicyStallsProducerUntilDrained) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 2;
  opts.policy = AdmissionPolicy::kBlock;
  AdmissionQueue<int> queue(opts);

  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));
  std::thread producer([&queue] { EXPECT_TRUE(queue.Push(3)); });
  // The third push must block while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(queue.size(), 2u);

  std::vector<int> got = queue.PopBatch(8);
  producer.join();
  std::vector<int> rest = queue.PopBatch(8);
  got.insert(got.end(), rest.begin(), rest.end());
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(queue.dropped(), 0u);
}

TEST(AdmissionQueueTest, DropOldestPolicyShedsFromTheFront) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 2;
  opts.policy = AdmissionPolicy::kDropOldest;
  AdmissionQueue<int> queue(opts);

  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.dropped(), 3u);
  EXPECT_EQ(queue.PopBatch(8), (std::vector<int>{4, 5}));

  queue.Close();
  EXPECT_FALSE(queue.Push(6));
  EXPECT_TRUE(queue.PopBatch(8).empty());
}

TEST(AdmissionQueueTest, DropOldestAttributesDropsPerKey) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 2;
  opts.policy = AdmissionPolicy::kDropOldest;
  opts.drop_key = [](const int& v) {
    return static_cast<std::uint64_t>(v % 2);
  };
  AdmissionQueue<int> queue(opts);

  for (int i = 1; i <= 6; ++i) ASSERT_TRUE(queue.Push(i));
  // Evicted from the front: 1, 2, 3, 4 — two odd keys, two even keys.
  EXPECT_EQ(queue.dropped(), 4u);
  const auto by_key = queue.DropsByKey();
  ASSERT_EQ(by_key.size(), 2u);
  EXPECT_EQ(by_key[0].first, 0u);
  EXPECT_EQ(by_key[0].second, 2u);
  EXPECT_EQ(by_key[1].first, 1u);
  EXPECT_EQ(by_key[1].second, 2u);
}

TEST(AdmissionQueueTest, DropFairShedsTheChattyKeyNotTheQuietOnes) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 8;
  opts.policy = AdmissionPolicy::kDropFair;
  // Key = value / 100: items 100..199 belong to key 1, 200..299 to key 2…
  opts.drop_key = [](const int& v) {
    return static_cast<std::uint64_t>(v / 100);
  };
  AdmissionQueue<int> queue(opts);

  // One item each from four quiet keys, then a chatty key floods the rest
  // of the queue and keeps pushing past capacity.
  for (int v : {200, 300, 400, 500}) ASSERT_TRUE(queue.Push(v));
  for (int i = 0; i < 12; ++i) ASSERT_TRUE(queue.Push(100 + i));

  // Every eviction lands on the chatty key 1: it is over its fair share
  // (8 / 5 live keys = 1) on every overflowing push.
  EXPECT_EQ(queue.dropped(), 8u);
  const auto by_key = queue.DropsByKey();
  ASSERT_EQ(by_key.size(), 1u);
  EXPECT_EQ(by_key[0].first, 1u);
  EXPECT_EQ(by_key[0].second, 8u);

  // The quiet keys' items all survive, still in arrival order, followed
  // by the chatty key's newest items.
  const std::vector<int> got = queue.PopBatch(16);
  EXPECT_EQ(got,
            (std::vector<int>{200, 300, 400, 500, 108, 109, 110, 111}));
}

TEST(AdmissionQueueTest, DropFairEvictsTheMostBufferedKeyWhenPusherIsUnderBudget) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 4;
  opts.policy = AdmissionPolicy::kDropFair;
  opts.drop_key = [](const int& v) {
    return static_cast<std::uint64_t>(v / 100);
  };
  AdmissionQueue<int> queue(opts);

  // Key 1 fills the queue; a brand-new quiet key pushes one item. The
  // pusher is under budget, so the most-buffered key (1) sheds its
  // oldest item instead.
  for (int v : {100, 101, 102, 103}) ASSERT_TRUE(queue.Push(v));
  ASSERT_TRUE(queue.Push(200));
  EXPECT_EQ(queue.dropped(), 1u);
  const auto by_key = queue.DropsByKey();
  ASSERT_EQ(by_key.size(), 1u);
  EXPECT_EQ(by_key[0].first, 1u);
  EXPECT_EQ(queue.PopBatch(8), (std::vector<int>{101, 102, 103, 200}));
}

TEST(AdmissionQueueTest, DropFairTiesBreakTowardTheSmallestKey) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 4;
  opts.policy = AdmissionPolicy::kDropFair;
  opts.drop_key = [](const int& v) {
    return static_cast<std::uint64_t>(v / 100);
  };
  AdmissionQueue<int> queue(opts);

  // Keys 1 and 2 each buffer two items; a new key 3 pushes while under
  // budget. Both incumbents are tied as "most buffered" — the smaller
  // key (1) is the deterministic victim.
  for (int v : {100, 200, 101, 201}) ASSERT_TRUE(queue.Push(v));
  ASSERT_TRUE(queue.Push(300));
  EXPECT_EQ(queue.dropped(), 1u);
  const auto by_key = queue.DropsByKey();
  ASSERT_EQ(by_key.size(), 1u);
  EXPECT_EQ(by_key[0].first, 1u);
  EXPECT_EQ(queue.PopBatch(8), (std::vector<int>{200, 101, 201, 300}));
}

TEST(AdmissionQueueTest, DropFairWithoutDropKeyFallsBackToDropOldest) {
  AdmissionQueue<int>::Options opts;
  opts.capacity = 2;
  opts.policy = AdmissionPolicy::kDropFair;
  AdmissionQueue<int> queue(opts);

  for (int i = 1; i <= 5; ++i) ASSERT_TRUE(queue.Push(i));
  EXPECT_EQ(queue.dropped(), 3u);
  EXPECT_EQ(queue.PopBatch(8), (std::vector<int>{4, 5}));
}

TEST(AdmissionTest, EngineQueueIngestMatchesSerialUnderBlockPolicy) {
  const auto stream = MixedStream();
  const RunOutputs serial = RunSerial(stream);

  DatacronEngine::Config cfg = ClusterConfig();
  cfg.admission = AdmissionPolicy::kBlock;
  cfg.admission_capacity = 64;  // tiny: force the producer to stall
  DatacronEngine engine(cfg);
  auto queue = engine.NewAdmissionQueue();
  EXPECT_EQ(queue->capacity(), 64u);
  EXPECT_EQ(queue->policy(), AdmissionPolicy::kBlock);

  std::thread producer([&] {
    for (const PositionReport& r : stream) queue->Push(r);
    queue->Close();
  });
  std::vector<Event> events = engine.IngestFromQueue(queue.get(), nullptr);
  producer.join();
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  EXPECT_EQ(queue->dropped(), 0u);
  ExpectIdentical(serial, Snapshot(engine, std::move(events)));
}

TEST(AdmissionTest, DropOldestShedsWhenConsumerLags) {
  const auto stream = MixedStream();
  DatacronEngine::Config cfg = ClusterConfig();
  cfg.admission = AdmissionPolicy::kDropOldest;
  cfg.admission_capacity = 256;
  DatacronEngine engine(cfg);
  auto queue = engine.NewAdmissionQueue();

  // No consumer while the whole stream is pushed: everything beyond the
  // buffer is shed from the front, the freshest reports survive.
  for (const PositionReport& r : stream) ASSERT_TRUE(queue->Push(r));
  queue->Close();
  EXPECT_EQ(queue->dropped(), stream.size() - 256);

  std::vector<Event> events = engine.IngestFromQueue(queue.get(), nullptr);
  EXPECT_EQ(engine.reports_ingested(), 256u);
  // The admitted suffix is processed in arrival order.
  const std::vector<Triple>& triples = engine.triples();
  EXPECT_FALSE(triples.empty());

  // Load shedding is attributable: the metrics report names the policy,
  // the total, and the per-entity counts the queue recorded.
  const std::string report = engine.MetricsReport();
  EXPECT_NE(report.find("admission: policy=drop-oldest"), std::string::npos)
      << report;
  EXPECT_NE(report.find("entities_hit="), std::string::npos);
  EXPECT_NE(report.find("dropped"), std::string::npos);
}

TEST(AdmissionTest, ClusterQueueIngestMatchesSerial) {
  const auto stream = MixedStream();
  const RunOutputs serial = RunSerial(stream);

  LocalCluster::Options opts;
  opts.engine = ClusterConfig();
  opts.engine.admission = AdmissionPolicy::kBlock;
  opts.num_nodes = 2;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(opts);
  ASSERT_TRUE(cluster.ok());

  auto queue = cluster.value()->engine().NewAdmissionQueue();
  std::thread producer([&] {
    for (const PositionReport& r : stream) queue->Push(r);
    queue->Close();
  });
  Result<std::vector<Event>> events =
      cluster.value()->engine().IngestFromQueue(queue.get());
  producer.join();
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  Result<std::vector<Event>> final_events = cluster.value()->engine().Finish();
  ASSERT_TRUE(final_events.ok());

  std::vector<Event> all = std::move(events).value();
  all.insert(all.end(), final_events.value().begin(),
             final_events.value().end());
  ExpectIdentical(serial, Snapshot(cluster.value()->engine().engine(),
                                   std::move(all)));
  ASSERT_TRUE(cluster.value()->Stop().ok());
}

}  // namespace
}  // namespace datacron
