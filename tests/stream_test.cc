#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>

#include "stream/operator.h"
#include "stream/pipeline.h"
#include "stream/queue.h"
#include "stream/window.h"

namespace datacron {
namespace {

// ------------------------------------------------------------- queue

TEST(BoundedQueueTest, PushPopOrder) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_EQ(q.Pop().value(), 2);
  EXPECT_EQ(q.Pop().value(), 3);
}

TEST(BoundedQueueTest, CloseDrainsThenSignalsEnd) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Close();
  EXPECT_EQ(q.Pop().value(), 1);
  EXPECT_FALSE(q.Pop().has_value());
  EXPECT_FALSE(q.Push(2));
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, BlockingProducerConsumer) {
  BoundedQueue<int> q(4);
  constexpr int kN = 1000;
  std::thread producer([&q] {
    for (int i = 0; i < kN; ++i) q.Push(i);
    q.Close();
  });
  int expected = 0;
  while (auto v = q.Pop()) {
    EXPECT_EQ(*v, expected++);
  }
  EXPECT_EQ(expected, kN);
  producer.join();
}

// ------------------------------------------------------------- operators

TEST(OperatorTest, MapTransforms) {
  MapOperator<int, int> op("double", [](const int& x) { return 2 * x; });
  const auto out = pipeline::RunBatch(&op, {1, 2, 3});
  EXPECT_EQ(out, (std::vector<int>{2, 4, 6}));
  EXPECT_EQ(op.metrics().items_in, 3u);
  EXPECT_EQ(op.metrics().items_out, 3u);
}

TEST(OperatorTest, FilterSelectivityMetrics) {
  FilterOperator<int> op("evens", [](const int& x) { return x % 2 == 0; });
  const auto out = pipeline::RunBatch(&op, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(out, (std::vector<int>{2, 4, 6}));
  EXPECT_DOUBLE_EQ(op.metrics().SelectivityPct(), 50.0);
}

TEST(OperatorTest, FlatMapFanOut) {
  FlatMapOperator<int, int> op("repeat",
                               [](const int& x, std::vector<int>* out) {
                                 for (int i = 0; i < x; ++i)
                                   out->push_back(x);
                               });
  const auto out = pipeline::RunBatch(&op, {1, 2, 3});
  EXPECT_EQ(out, (std::vector<int>{1, 2, 2, 3, 3, 3}));
}

// ------------------------------------------------------------- windows

struct Tuple {
  int key;
  TimestampMs ts;
  double value;
};

using SumWindow = TumblingWindowOperator<Tuple, int, double>;

SumWindow MakeSumWindow(DurationMs size, DurationMs lateness) {
  return SumWindow(
      "sum", size, lateness, [](const Tuple& t) { return t.key; },
      [](const Tuple& t) { return t.ts; },
      [](double* acc, const Tuple& t) { *acc += t.value; });
}

TEST(TumblingWindowTest, AggregatesPerKeyAndWindow) {
  auto op = MakeSumWindow(1000, 0);
  const std::vector<Tuple> input = {
      {1, 100, 1.0}, {1, 200, 2.0}, {2, 300, 5.0},
      {1, 1100, 4.0},  // closes window [0,1000) on watermark 1100
      {2, 2500, 7.0},  // closes [1000,2000)
  };
  const auto out = pipeline::RunBatch(&op, input);
  ASSERT_EQ(out.size(), 4u);
  // First two closed windows: key1 sum 3, key2 sum 5 in [0,1000).
  double key1_first = 0, key2_first = 0;
  for (const auto& w : out) {
    if (w.window_start == 0 && w.key == 1) key1_first = w.value;
    if (w.window_start == 0 && w.key == 2) key2_first = w.value;
  }
  EXPECT_DOUBLE_EQ(key1_first, 3.0);
  EXPECT_DOUBLE_EQ(key2_first, 5.0);
}

TEST(TumblingWindowTest, LateDataDroppedBeyondLateness) {
  auto op = MakeSumWindow(1000, 500);
  std::vector<SumWindow::Out> out;
  op.ProcessCounted({1, 100, 1.0}, &out);
  op.ProcessCounted({1, 5000, 1.0}, &out);  // watermark -> 4500
  op.ProcessCounted({1, 200, 99.0}, &out);  // too late, dropped
  EXPECT_EQ(op.dropped_late(), 1u);
  op.Flush(&out);
  double total = 0;
  for (const auto& w : out) total += w.value;
  EXPECT_DOUBLE_EQ(total, 2.0);  // the late tuple never counted
}

TEST(TumblingWindowTest, AllowedLatenessAcceptsSlightlyLate) {
  auto op = MakeSumWindow(1000, 2000);
  std::vector<SumWindow::Out> out;
  op.ProcessCounted({1, 100, 1.0}, &out);
  op.ProcessCounted({1, 1500, 1.0}, &out);
  op.ProcessCounted({1, 300, 1.0}, &out);  // late but within lateness
  EXPECT_EQ(op.dropped_late(), 0u);
  op.Flush(&out);
  double first_window = 0;
  for (const auto& w : out) {
    if (w.window_start == 0) first_window = w.value;
  }
  EXPECT_DOUBLE_EQ(first_window, 2.0);
}

TEST(TumblingWindowTest, FlushEmitsPending) {
  auto op = MakeSumWindow(60000, 0);
  std::vector<SumWindow::Out> out;
  op.ProcessCounted({1, 100, 2.5}, &out);
  EXPECT_TRUE(out.empty());
  op.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].value, 2.5);
}

using CountSession = SessionWindowOperator<Tuple, int, int>;

CountSession MakeSession(DurationMs gap) {
  return CountSession(
      "session", gap, [](const Tuple& t) { return t.key; },
      [](const Tuple& t) { return t.ts; },
      [](int* acc, const Tuple&) { *acc += 1; });
}

TEST(SessionWindowTest, GapClosesSession) {
  auto op = MakeSession(1000);
  std::vector<CountSession::Out> out;
  op.ProcessCounted({1, 0, 0}, &out);
  op.ProcessCounted({1, 500, 0}, &out);
  op.ProcessCounted({1, 900, 0}, &out);
  EXPECT_TRUE(out.empty());
  op.ProcessCounted({1, 5000, 0}, &out);  // silence > gap: session closed
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 3);
  EXPECT_EQ(out[0].window_start, 0);
  EXPECT_EQ(out[0].window_end, 900);
  op.Flush(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].value, 1);  // the reopened session
}

TEST(SessionWindowTest, KeysIndependent) {
  auto op = MakeSession(1000);
  std::vector<CountSession::Out> out;
  op.ProcessCounted({1, 0, 0}, &out);
  op.ProcessCounted({2, 0, 0}, &out);
  op.ProcessCounted({1, 5000, 0}, &out);  // closes key 1 only
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 1);
  EXPECT_EQ(op.OpenSessions(), 2u);
}

TEST(SessionWindowTest, ContinuousStreamIsOneSession) {
  auto op = MakeSession(60000);
  std::vector<CountSession::Out> out;
  for (int i = 0; i < 100; ++i) {
    op.ProcessCounted({1, static_cast<TimestampMs>(i) * 1000, 0}, &out);
  }
  EXPECT_TRUE(out.empty());
  op.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 100);
}

TEST(SlidingWindowTest, KeepsSpanAndEvicts) {
  using Out = std::pair<int, std::size_t>;  // (key, window size)
  SlidingWindowOperator<Tuple, int, Out> op(
      "slide", 1000, [](const Tuple& t) { return t.key; },
      [](const Tuple& t) { return t.ts; },
      [](const int& key, const std::vector<Tuple>& win,
         std::vector<Out>* out) { out->push_back({key, win.size()}); });
  std::vector<Out> out;
  op.ProcessCounted({1, 0, 0}, &out);
  op.ProcessCounted({1, 500, 0}, &out);
  op.ProcessCounted({1, 900, 0}, &out);
  op.ProcessCounted({1, 2000, 0}, &out);  // evicts everything older
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[2].second, 3u);
  EXPECT_EQ(out[3].second, 1u);
}

// ------------------------------------------------------------- pipeline

TEST(PipelineTest, RunBatch2Chains) {
  MapOperator<int, int> inc("inc", [](const int& x) { return x + 1; });
  FilterOperator<int> odd("odd", [](const int& x) { return x % 2 == 1; });
  const auto out = pipeline::RunBatch2(&inc, &odd, {1, 2, 3, 4});
  EXPECT_EQ(out, (std::vector<int>{3, 5}));
}

TEST(PipelineTest, ThreadedMatchesInline) {
  std::vector<int> input(2000);
  for (int i = 0; i < 2000; ++i) input[i] = i;

  MapOperator<int, int> m1("m", [](const int& x) { return x * 3; });
  FilterOperator<int> f1("f", [](const int& x) { return x % 2 == 0; });
  auto inline_out = pipeline::RunBatch2(&m1, &f1, input);

  MapOperator<int, int> m2("m", [](const int& x) { return x * 3; });
  FilterOperator<int> f2("f", [](const int& x) { return x % 2 == 0; });
  auto threaded_out = pipeline::RunThreaded2(&m2, &f2, input, 64);

  EXPECT_EQ(inline_out, threaded_out);
}

TEST(PipelineTest, WindowInThreadedPipeline) {
  // Window operator as the second stage of a threaded pipeline.
  std::vector<Tuple> input;
  for (int i = 0; i < 100; ++i) {
    input.push_back({i % 3, static_cast<TimestampMs>(i) * 100, 1.0});
  }
  MapOperator<Tuple, Tuple> identity("id",
                                     [](const Tuple& t) { return t; });
  auto window = MakeSumWindow(1000, 0);
  const auto out = pipeline::RunThreaded2(&identity, &window, input, 16);
  double total = 0;
  for (const auto& w : out) total += w.value;
  EXPECT_DOUBLE_EQ(total, 100.0);  // nothing lost
}

}  // namespace
}  // namespace datacron
