#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "link/link_discovery.h"
#include "link/rdf_links.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

PositionReport At(EntityId id, TimestampMs t, double lat, double lon) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = {lat, lon, 0};
  r.speed_mps = 5;
  return r;
}

LinkDiscovery::Config DefaultConfig() {
  LinkDiscovery::Config cfg;
  cfg.proximity_threshold_m = 2000;
  cfg.time_tolerance = 30 * kSecond;
  return cfg;
}

TEST(LinkDiscoveryTest, FindsCloseSimultaneousPair) {
  LinkDiscovery link(DefaultConfig());
  const auto links = link.DiscoverProximity({
      At(1, 1000, 36.0, 24.0),
      At(2, 2000, 36.005, 24.0),  // ~550 m away
      At(3, 1500, 37.5, 26.0),    // far
  });
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].a, 1u);
  EXPECT_EQ(links[0].b, 2u);
  EXPECT_NEAR(links[0].distance_m, 556, 30);
}

TEST(LinkDiscoveryTest, RespectsTimeTolerance) {
  LinkDiscovery link(DefaultConfig());
  const auto links = link.DiscoverProximity({
      At(1, 0, 36.0, 24.0),
      At(2, 5 * kMinute, 36.001, 24.0),  // close in space, far in time
  });
  EXPECT_TRUE(links.empty());
}

TEST(LinkDiscoveryTest, SameEntityNeverLinksToItself) {
  LinkDiscovery link(DefaultConfig());
  const auto links = link.DiscoverProximity({
      At(1, 1000, 36.0, 24.0),
      At(1, 2000, 36.0001, 24.0),
  });
  EXPECT_TRUE(links.empty());
}

TEST(LinkDiscoveryTest, CrossFramePairsFound) {
  // Two reports 25 s apart straddling a 30 s frame boundary.
  LinkDiscovery link(DefaultConfig());
  const auto links = link.DiscoverProximity({
      At(1, 29 * kSecond, 36.0, 24.0),
      At(2, 54 * kSecond, 36.002, 24.0),
  });
  EXPECT_EQ(links.size(), 1u);
}

class BlockedVsBruteTest : public ::testing::TestWithParam<int> {};

TEST_P(BlockedVsBruteTest, BlockingDoesNotChangeResults) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 20;
  fleet.duration = 20 * kMinute;
  fleet.seed = 100 + GetParam();
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  obs.seed = 200 + GetParam();
  const auto reports = ObserveFleet(traces, obs);

  LinkDiscovery link(DefaultConfig());
  auto blocked = link.DiscoverProximity(reports);
  auto brute = link.DiscoverProximityBruteForce(reports);

  auto key = [](const EntityLink& l) {
    return std::make_tuple(l.a, l.b, l.t);
  };
  std::set<std::tuple<EntityId, EntityId, TimestampMs>> bset, rset;
  for (const auto& l : blocked) bset.insert(key(l));
  for (const auto& l : brute) rset.insert(key(l));
  EXPECT_EQ(bset, rset);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockedVsBruteTest, ::testing::Range(0, 3));

TEST(LinkDiscoveryTest, AreaLinksOnEntryOnly) {
  LinkDiscovery link(DefaultConfig());
  NamedArea port{"port_x",
                 Polygon::Rectangle(BoundingBox::Of(36, 24, 36.1, 24.1))};
  const auto links = link.DiscoverAreaLinks(
      {
          At(1, 0, 35.9, 24.05),     // outside
          At(1, 1000, 36.05, 24.05), // inside -> entry
          At(1, 2000, 36.06, 24.05), // still inside, no new link
          At(1, 3000, 36.2, 24.05),  // left
          At(1, 4000, 36.05, 24.05), // re-entered -> second entry
      },
      {port});
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].t, 1000);
  EXPECT_EQ(links[1].t, 4000);
  EXPECT_EQ(links[0].area, "port_x");
}

TEST(LinkDiscoveryTest, WeatherLinksUseCellAndBucket) {
  LinkDiscovery link(DefaultConfig());
  WeatherSource::Config wcfg;
  WeatherSource weather(wcfg);
  const auto links = link.DiscoverWeatherLinks(
      {At(1, wcfg.start_time + 90 * kMinute, 36.5, 24.5)}, weather);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].bucket_start, wcfg.start_time + kHour);
  EXPECT_EQ(links[0].cell, weather.grid().CellOf({36.5, 24.5}));
}

TEST(TrueEncountersTest, DetectsConstructedEncounter) {
  // Two straight traces crossing at a point.
  TruthTrace a, b;
  a.entity_id = 1;
  b.entity_id = 2;
  a.tick_ms = b.tick_ms = 1000;
  a.start_time = b.start_time = 0;
  for (int i = 0; i <= 600; ++i) {
    PositionReport ra, rb;
    ra.entity_id = 1;
    rb.entity_id = 2;
    ra.timestamp = rb.timestamp = i * 1000;
    // a heads east along lat 36; b heads north along lon 24.05; they meet
    // near (36, 24.05) mid-simulation.
    ra.position = {36.0, 24.0 + 0.0001 * i, 0};
    rb.position = {35.97 + 0.0001 * i, 24.03, 0};
    a.samples.push_back(ra);
    b.samples.push_back(rb);
  }
  const auto truth = TrueEncounters({a, b}, 2000, 30 * kSecond);
  EXPECT_FALSE(truth.empty());
}

TEST(EvaluateLinksTest, PerfectDiscoveryScoresOne) {
  std::vector<EntityLink> links = {{1, 2, 1000, 500}, {3, 4, 70000, 800}};
  const LinkQuality q = EvaluateLinks(links, links, 30 * kSecond);
  EXPECT_DOUBLE_EQ(q.Precision(), 1.0);
  EXPECT_DOUBLE_EQ(q.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(q.F1(), 1.0);
}

TEST(EvaluateLinksTest, MissesAndFalseAlarmsCounted) {
  std::vector<EntityLink> truth = {{1, 2, 1000, 500}, {3, 4, 500000, 800}};
  std::vector<EntityLink> discovered = {{1, 2, 1000, 500},
                                        {5, 6, 900000, 100}};
  const LinkQuality q = EvaluateLinks(discovered, truth, 30 * kSecond);
  EXPECT_EQ(q.true_positive, 1u);
  EXPECT_EQ(q.false_positive, 1u);
  EXPECT_EQ(q.false_negative, 1u);
  EXPECT_DOUBLE_EQ(q.Precision(), 0.5);
  EXPECT_DOUBLE_EQ(q.Recall(), 0.5);
}

TEST(LinkQualityOnFleetTest, DiscoveryApproximatesTruth) {
  // End-to-end: discovered links from observed reports vs. dense truth.
  AisGeneratorConfig fleet;
  fleet.num_vessels = 25;
  fleet.duration = 30 * kMinute;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  obs.position_noise_m = 10;
  obs.drop_probability = 0;
  obs.gap_probability = 0;
  const auto reports = ObserveFleet(traces, obs);
  LinkDiscovery link(DefaultConfig());
  const auto discovered = link.DiscoverProximity(reports);
  const auto truth =
      TrueEncounters(traces, 2000, DefaultConfig().time_tolerance);
  const LinkQuality q =
      EvaluateLinks(discovered, truth, DefaultConfig().time_tolerance);
  if (!truth.empty()) {
    EXPECT_GT(q.Recall(), 0.6);
    EXPECT_GT(q.Precision(), 0.6);
  }
}

TEST(RdfLinksTest, MaterializeProximityEmitsSymmetricTriples) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  const auto r1 = At(1, 1000, 36.0, 24.0);
  const auto r2 = At(2, 1000, 36.005, 24.0);
  rdfizer.TransformReport(r1);
  rdfizer.TransformReport(r2);
  std::vector<Triple> out;
  const auto stats = MaterializeProximityLinks({{1, 2, 1000, 550}},
                                               &rdfizer, vocab, &out);
  EXPECT_EQ(stats.emitted, 1u);
  EXPECT_EQ(out.size(), 2u);  // both directions
  for (const Triple& t : out) EXPECT_EQ(t.p, vocab.p_near_entity);
}

TEST(RdfLinksTest, UnknownNodeSkipped) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  std::vector<Triple> out;
  const auto stats = MaterializeAreaLinks({{9, "port", 123}},
                                          &rdfizer, vocab, &out);
  EXPECT_EQ(stats.emitted, 0u);
  EXPECT_EQ(stats.skipped_unknown_node, 1u);
  EXPECT_TRUE(out.empty());
}

TEST(RdfLinksTest, WeatherLinkResolvesNode) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer::Config cfg;
  Rdfizer rdfizer(cfg, &dict, &vocab);
  const auto r = At(5, cfg.epoch + kHour, 36.5, 24.5);
  rdfizer.TransformReport(r);
  std::vector<Triple> out;
  WeatherLink wl{5, r.timestamp, rdfizer.grid().CellOf({36.5, 24.5}),
                 cfg.epoch + kHour};
  const auto stats = MaterializeWeatherLinks({wl}, &rdfizer, vocab, &out);
  EXPECT_EQ(stats.emitted, 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].p, vocab.p_weather_at);
}

}  // namespace
}  // namespace datacron
