#include <gtest/gtest.h>

#include <memory>

#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/aggregate.h"
#include "query/engine.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

ResultSet MakeResults(TermDictionary* dict) {
  // Rows: (group, value) with values as double literals.
  ResultSet rs;
  const TermId g1 = dict->Intern("ent:1");
  const TermId g2 = dict->Intern("ent:2");
  auto val = [dict](double x) { return dict->InternDouble(x); };
  rs.rows = {
      {g1, val(2.0)}, {g1, val(4.0)}, {g1, val(6.0)},
      {g2, val(10.0)}, {g2, val(20.0)},
  };
  return rs;
}

TEST(AggregateTest, CountPerGroup) {
  TermDictionary dict;
  const ResultSet rs = MakeResults(&dict);
  auto agg = Aggregate(rs, 0, 1, AggregateFn::kCount, dict);
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg.value().size(), 2u);
  EXPECT_DOUBLE_EQ(agg.value()[0].value, 3.0);  // ent:1 has 3 rows
  EXPECT_DOUBLE_EQ(agg.value()[1].value, 2.0);
}

TEST(AggregateTest, AvgSumMinMax) {
  TermDictionary dict;
  const ResultSet rs = MakeResults(&dict);
  auto avg = Aggregate(rs, 0, 1, AggregateFn::kAvg, dict);
  ASSERT_TRUE(avg.ok());
  // Ordered by descending value: ent:2 avg 15 first.
  EXPECT_DOUBLE_EQ(avg.value()[0].value, 15.0);
  EXPECT_DOUBLE_EQ(avg.value()[1].value, 4.0);

  auto sum = Aggregate(rs, 0, 1, AggregateFn::kSum, dict);
  EXPECT_DOUBLE_EQ(sum.value()[0].value, 30.0);
  EXPECT_DOUBLE_EQ(sum.value()[1].value, 12.0);

  auto mn = Aggregate(rs, 0, 1, AggregateFn::kMin, dict);
  EXPECT_DOUBLE_EQ(mn.value()[0].value, 10.0);
  auto mx = Aggregate(rs, 0, 1, AggregateFn::kMax, dict);
  EXPECT_DOUBLE_EQ(mx.value()[0].value, 20.0);
}

TEST(AggregateTest, NonNumericValuesSkipped) {
  TermDictionary dict;
  ResultSet rs;
  const TermId g = dict.Intern("ent:1");
  rs.rows = {{g, dict.Intern("not-a-number")},
             {g, dict.InternDouble(8.0)}};
  auto avg = Aggregate(rs, 0, 1, AggregateFn::kAvg, dict);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg.value()[0].value, 8.0);
  EXPECT_EQ(avg.value()[0].count, 2u);
}

TEST(AggregateTest, BadVariableIndexFails) {
  TermDictionary dict;
  const ResultSet rs = MakeResults(&dict);
  EXPECT_FALSE(Aggregate(rs, 7, 1, AggregateFn::kCount, dict).ok());
  EXPECT_FALSE(Aggregate(rs, 0, 7, AggregateFn::kAvg, dict).ok());
}

TEST(AggregateTest, TableFormatting) {
  TermDictionary dict;
  const ResultSet rs = MakeResults(&dict);
  auto agg = Aggregate(rs, 0, 1, AggregateFn::kAvg, dict);
  ASSERT_TRUE(agg.ok());
  const std::string table =
      AggregateTable(agg.value(), dict, "entity", "avg_speed");
  EXPECT_NE(table.find("ent:2"), std::string::npos);
  EXPECT_NE(table.find("15.00"), std::string::npos);
}

TEST(AggregateTest, MeanSpeedPerVesselEndToEnd) {
  // Integration: average reported speed per vessel via query + aggregate.
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  AisGeneratorConfig fleet;
  fleet.num_vessels = 5;
  fleet.duration = 20 * kMinute;
  ObservationConfig obs;
  std::vector<Triple> triples;
  for (const auto& r : ObserveFleet(GenerateAisFleet(fleet), obs)) {
    const auto ts = rdfizer.TransformReport(r);
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  HashPartitioner scheme(2, &rdfizer.tags());
  PartitionedRdfStore store;
  store.Load(triples, scheme, rdfizer.grid());
  QueryEngine engine(&store, &rdfizer);

  QueryBuilder qb;
  qb.WhereVar("node", vocab.p_of_entity, "vessel");
  qb.WhereVar("node", vocab.p_speed, "speed");
  const Query q = qb.Build();
  const ResultSet rs = engine.ExecuteGlobal(q);
  ASSERT_FALSE(rs.rows.empty());
  // vars: node=0, vessel=1, speed=2.
  auto agg = Aggregate(rs, 1, 2, AggregateFn::kAvg, dict);
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg.value().size(), 5u);
  for (const AggregateRow& row : agg.value()) {
    EXPECT_GT(row.value, 0.0);
    EXPECT_LT(row.value, 15.0);  // max ~22 kn
  }
}

}  // namespace
}  // namespace datacron
