// The cell-parallel epoch-batched global CEP stage: ComputeCpa units
// (scalar + struct-of-arrays overload), ProximityDetector batch/serial
// byte-equality at several pool widths, CapacityMonitor incremental vs
// rescan equivalence + the fast-mover prefilter regression, detector
// state bounds under eviction, and full-engine byte-identity across a
// pool-threads x shards matrix.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "cep/cpa.h"
#include "cep/detectors.h"
#include "cep/fleet_snapshot.h"
#include "cep/hotspot.h"
#include "common/thread_pool.h"
#include "datacron/engine.h"
#include "sources/adsb_generator.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

constexpr TimestampMs kT0 = 1490000000000;  // 2017-03-20, project era

PositionReport Report(EntityId id, double lat, double lon, double speed_mps,
                      double course_deg, TimestampMs ts,
                      Domain domain = Domain::kMaritime, double alt_m = 0.0,
                      double vrate_mps = 0.0) {
  PositionReport r;
  r.entity_id = id;
  r.domain = domain;
  r.timestamp = ts;
  r.position = {lat, lon, alt_m};
  r.speed_mps = speed_mps;
  r.course_deg = course_deg;
  r.vertical_rate_mps = vrate_mps;
  return r;
}

// ---------------------------------------------------------------------
// ComputeCpa units
// ---------------------------------------------------------------------

TEST(ComputeCpaTest, ZeroRelativeMotionKeepsCurrentSeparation) {
  // Same course and speed: separation never changes, CPA is "now".
  const auto a = Report(1, 36.0, 24.0, 8.0, 90.0, kT0);
  const auto b = Report(2, 36.0, 24.05, 8.0, 90.0, kT0);
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, 0.0);
  EXPECT_DOUBLE_EQ(cpa.d_cpa_m, cpa.d_now_m);
  EXPECT_GT(cpa.d_now_m, 4000.0);
  EXPECT_LT(cpa.d_now_m, 5000.0);
}

TEST(ComputeCpaTest, CoLocatedReportsHaveZeroSeparation) {
  const auto a = Report(1, 36.0, 24.0, 5.0, 0.0, kT0);
  const auto b = Report(2, 36.0, 24.0, 5.0, 180.0, kT0);
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_DOUBLE_EQ(cpa.d_now_m, 0.0);
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, 0.0);
  EXPECT_DOUBLE_EQ(cpa.d_cpa_m, 0.0);
}

TEST(ComputeCpaTest, DivergingPairClampsCpaToNow) {
  // b sits east of a and sails further east: closest approach was in the
  // past, so t clamps to 0 and CPA distance equals current distance.
  const auto a = Report(1, 36.0, 24.0, 0.0, 0.0, kT0);
  const auto b = Report(2, 36.0, 24.01, 10.0, 90.0, kT0);
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, 0.0);
  EXPECT_DOUBLE_EQ(cpa.d_cpa_m, cpa.d_now_m);
}

TEST(ComputeCpaTest, VerticalRateProjectsAltitudeSeparation) {
  // b approaches a horizontally at 10 m/s from ~1 km east while
  // descending through a's level at 10 m/s: at the horizontal CPA
  // (~100 s) the altitude gap has grown from +300 m to ~-700 m.
  const auto a =
      Report(1, 36.0, 24.0, 0.0, 0.0, kT0, Domain::kAviation, 1000.0, 0.0);
  auto b = Report(2, 36.0, 24.0, 10.0, 270.0, kT0, Domain::kAviation,
                  1300.0, -10.0);
  // Place b ~1000 m east of a.
  b.position.lon_deg = 24.0 + 1000.0 / (kEarthRadiusMeters * kDegToRad *
                                        std::cos(36.0 * kDegToRad));
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_NEAR(cpa.t_cpa_s, 100.0, 1.0);
  EXPECT_LT(cpa.d_cpa_m, 50.0);
  EXPECT_NEAR(cpa.d_alt_m, 700.0, 15.0);
}

TEST(ComputeCpaTest, EarlierReportIsDeadReckonedToLaterTimestamp) {
  // a reported 60 s before b; the aligned run must differ from the
  // same-timestamp run by a's 60 s of dead reckoning.
  const auto stale = Report(1, 36.0, 24.0, 10.0, 0.0, kT0 - 60 * kSecond);
  const auto fresh = Report(2, 36.02, 24.0, 0.0, 0.0, kT0);
  const CpaResult cpa = ComputeCpa(stale, fresh);
  auto aligned = stale;
  aligned.position =
      DeadReckon(stale.position, stale.course_deg, stale.speed_mps,
                 stale.vertical_rate_mps, 60.0);
  aligned.timestamp = kT0;
  const CpaResult expect = ComputeCpa(aligned, fresh);
  EXPECT_DOUBLE_EQ(cpa.d_now_m, expect.d_now_m);
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, expect.t_cpa_s);
}

TEST(ComputeCpaTest, SnapshotOverloadIsBitIdenticalToReportOverload) {
  FleetSnapshot fleet;
  const auto a = Report(7, 36.123, 24.456, 7.3, 41.0, kT0 + 1234,
                        Domain::kAviation, 3200.0, 4.5);
  const auto b = Report(9, 36.121, 24.459, 11.9, 222.0, kT0 + 987,
                        Domain::kAviation, 2900.0, -2.25);
  const std::uint32_t ra = fleet.Append(a);
  const std::uint32_t rb = fleet.Append(b);
  EXPECT_EQ(fleet.ReportAt(ra), a);
  EXPECT_EQ(fleet.ReportAt(rb), b);
  const CpaResult scalar = ComputeCpa(a, b);
  const CpaResult soa = ComputeCpa(fleet, ra, rb);
  EXPECT_EQ(scalar.t_cpa_s, soa.t_cpa_s);
  EXPECT_EQ(scalar.d_cpa_m, soa.d_cpa_m);
  EXPECT_EQ(scalar.d_alt_m, soa.d_alt_m);
  EXPECT_EQ(scalar.d_now_m, soa.d_now_m);
}

// ---------------------------------------------------------------------
// ProximityDetector: batch == serial, bounded state
// ---------------------------------------------------------------------

/// Dense fleet in a small box so the blocking grid actually produces
/// candidate pairs.
std::vector<PositionReport> DenseFleet(std::size_t vessels,
                                       DurationMs duration) {
  AisGeneratorConfig fleet;
  fleet.region = BoundingBox::Of(36.0, 24.0, 36.5, 24.5);
  fleet.num_vessels = vessels;
  fleet.duration = duration;
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  std::vector<PositionReport> reports =
      ObserveFleet(GenerateAisFleet(fleet), obs);
  std::sort(reports.begin(), reports.end(), ReportTimeOrder());
  return reports;
}

ProximityDetector::Config DenseProximityConfig() {
  ProximityDetector::Config cfg;
  cfg.region = BoundingBox::Of(36.0, 24.0, 36.5, 24.5);
  cfg.evict_sweep_interval = 257;  // off-epoch-boundary on purpose
  return cfg;
}

TEST(ProximityBatchTest, BatchMatchesSerialAtEveryPoolWidth) {
  const auto stream = DenseFleet(30, 30 * kMinute);
  ASSERT_GT(stream.size(), 2000u);

  ProximityDetector serial(DenseProximityConfig());
  std::vector<Event> serial_events;
  for (const PositionReport& r : stream) {
    serial.Process(r, &serial_events);
  }
  ASSERT_FALSE(serial_events.empty());

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    ProximityDetector::Config cfg = DenseProximityConfig();
    cfg.min_parallel_pairs = 1;  // force the pool dispatch path
    ProximityDetector batch(cfg);
    std::vector<Event> batch_events;
    std::vector<std::size_t> offsets;
    constexpr std::size_t kEpoch = 512;
    for (std::size_t i = 0; i < stream.size(); i += kEpoch) {
      const std::size_t len = std::min(kEpoch, stream.size() - i);
      batch.ProcessBatch(
          std::span<const PositionReport>(stream.data() + i, len), &pool,
          &batch_events, &offsets);
      // Offsets slice the epoch's events back per report.
      ASSERT_EQ(offsets.size(), len + 1);
      EXPECT_EQ(offsets.back(), batch_events.size());
    }
    EXPECT_EQ(serial_events, batch_events)
        << "divergence at " << threads << " pool threads";

    const auto ss = serial.Stats();
    const auto bs = batch.Stats();
    EXPECT_EQ(ss.tracked_entities, bs.tracked_entities);
    EXPECT_EQ(ss.occupied_cells, bs.occupied_cells);
    EXPECT_EQ(ss.rate_entries, bs.rate_entries);
  }
}

TEST(ProximityBatchTest, EvictionBoundsStateOnChurningFleet) {
  // 5000 one-shot entities, one report each, 1 s apart: without eviction
  // the detector would track all of them forever.
  ProximityDetector::Config cfg;
  cfg.staleness = 3 * kMinute;
  cfg.evict_sweep_interval = 256;
  ProximityDetector det(cfg);
  std::vector<Event> events;
  for (std::uint32_t i = 0; i < 5000; ++i) {
    det.Process(Report(100000 + i, 36.0 + 0.0001 * (i % 100), 24.0,
                       5.0, 0.0, kT0 + i * kSecond),
                &events);
  }
  const auto stats = det.Stats();
  // Live window is staleness (180 reports at 1 Hz) plus at most one
  // sweep interval of not-yet-evicted entities.
  EXPECT_LE(stats.tracked_entities, 180u + cfg.evict_sweep_interval);
  EXPECT_GE(stats.tracked_entities, 100u);
  // The SoA log compacts; it must not retain all 5000 rows.
  EXPECT_LE(stats.snapshot_rows, 4600u);
  // Rate-limit entries are bounded by pairs alarmed within the re-alarm
  // window (~5 min + one sweep at 1 report/s here), independent of total
  // stream length — far below the ~12.5M all-pairs worst case.
  EXPECT_LE(stats.rate_entries, 160000u);
}

TEST(ProximityBatchTest, UnknownPartnerIdsAreNeverMaterialized) {
  // Two co-located entities; after the first goes stale and is evicted,
  // reports near its old cell must not resurrect it as a blank partner
  // (the old latest_[other_id] default-insert bug).
  ProximityDetector::Config cfg;
  cfg.staleness = 1 * kMinute;
  cfg.evict_sweep_interval = 4;
  ProximityDetector det(cfg);
  std::vector<Event> events;
  det.Process(Report(1, 36.0, 24.0, 5.0, 0.0, kT0), &events);
  for (int i = 0; i < 20; ++i) {
    det.Process(Report(2, 36.0, 24.0, 5.0, 0.0,
                       kT0 + 5 * kMinute + i * kSecond),
                &events);
  }
  EXPECT_EQ(det.Stats().tracked_entities, 1u);
}

// ---------------------------------------------------------------------
// CapacityMonitor: incremental == rescan, prefilter regression
// ---------------------------------------------------------------------

std::vector<CapacityMonitor::Sector> TestSectors() {
  return {
      CapacityMonitor::Sector{
          "west", Polygon::Rectangle(BoundingBox::Of(36.0, 24.0, 36.5, 24.25)),
          3},
      CapacityMonitor::Sector{
          "east", Polygon::Rectangle(BoundingBox::Of(36.0, 24.25, 36.5, 24.5)),
          3},
      CapacityMonitor::Sector{
          "all", Polygon::Rectangle(BoundingBox::Of(36.0, 24.0, 36.5, 24.5)),
          8},
  };
}

TEST(CapacityIncrementalTest, MatchesRescanBaselineEventForEvent) {
  const auto stream = DenseFleet(25, 30 * kMinute);

  CapacityMonitor::Config inc_cfg;
  inc_cfg.incremental = true;
  inc_cfg.compact_interval = 100;  // exercise compaction mid-stream
  CapacityMonitor incremental(TestSectors(), inc_cfg);

  CapacityMonitor::Config rescan_cfg;
  rescan_cfg.incremental = false;
  CapacityMonitor rescan(TestSectors(), rescan_cfg);

  std::vector<Event> inc_events, rescan_events;
  for (const PositionReport& r : stream) {
    incremental.Process(r, &inc_events);
    rescan.Process(r, &rescan_events);
  }
  ASSERT_FALSE(inc_events.empty());
  EXPECT_EQ(inc_events, rescan_events);
}

TEST(CapacityIncrementalTest, StaleEntitiesExpireFromOccupancy) {
  CapacityMonitor::Config cfg;
  cfg.staleness = 2 * kMinute;
  cfg.compact_interval = 8;
  CapacityMonitor monitor(TestSectors(), cfg);
  std::vector<Event> events;
  // 50 one-shot entities at t0, then one entity reporting past the
  // staleness horizon: everyone else must expire.
  for (std::uint32_t i = 0; i < 50; ++i) {
    monitor.Process(Report(i + 1, 36.1, 24.1, 5.0, 0.0, kT0 + i), &events);
  }
  EXPECT_EQ(monitor.tracked_entities(), 50u);
  for (int i = 0; i < 32; ++i) {
    monitor.Process(Report(999, 36.4, 24.4, 5.0, 0.0,
                           kT0 + 5 * kMinute + i * kSecond),
                    &events);
  }
  EXPECT_EQ(monitor.tracked_entities(), 1u);
}

TEST(CapacityIncrementalTest, FastMoverTriggersForecastBeyondLegacyGate) {
  // Entity 0.7 deg west of the sector — outside the legacy fixed
  // 0.5 deg prefilter — doing 120 m/s eastbound with a 10 min horizon
  // (reach ~0.8 deg): it dead-reckons into the sector, so the forecast
  // must fire.
  std::vector<CapacityMonitor::Sector> sectors{CapacityMonitor::Sector{
      "target", Polygon::Rectangle(BoundingBox::Of(36.0, 24.0, 37.0, 25.0)),
      0}};
  CapacityMonitor::Config cfg;
  cfg.forecast_horizon = 10 * kMinute;
  CapacityMonitor monitor(sectors, cfg);
  std::vector<Event> events;
  monitor.Process(Report(42, 36.5, 23.3, 120.0, 90.0, kT0,
                         Domain::kAviation, 9000.0),
                  &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, EventKind::kCapacityForecast);
  EXPECT_EQ(events[0].label, "target");
}

// ---------------------------------------------------------------------
// Hotspot: density-map detection path
// ---------------------------------------------------------------------

TEST(HotspotDensityTest, DetectFromDensityMatchesBatchDetect) {
  HotspotAnalyzer::Config cfg;
  cfg.region = BoundingBox::Of(36.0, 24.0, 36.5, 24.5);
  cfg.cell_deg = 0.05;
  cfg.zscore_threshold = 2.0;
  HotspotAnalyzer analyzer(cfg);

  std::vector<PositionReport> reports;
  // A concentration of 12 entities in one cell over sparse background.
  for (std::uint32_t i = 0; i < 12; ++i) {
    reports.push_back(Report(i + 1, 36.11, 24.11, 3.0, 0.0, kT0 + i));
  }
  for (std::uint32_t i = 0; i < 10; ++i) {
    reports.push_back(Report(100 + i, 36.0 + 0.049 * i, 24.3, 3.0, 0.0,
                             kT0 + i));
  }
  const auto direct = analyzer.Detect(reports);
  const auto via_density =
      analyzer.DetectFromDensity(analyzer.Density(reports));
  ASSERT_FALSE(direct.empty());
  ASSERT_EQ(direct.size(), via_density.size());
  for (std::size_t i = 0; i < direct.size(); ++i) {
    EXPECT_EQ(direct[i].cell, via_density[i].cell);
    EXPECT_DOUBLE_EQ(direct[i].count, via_density[i].count);
    EXPECT_DOUBLE_EQ(direct[i].zscore, via_density[i].zscore);
  }
}

// ---------------------------------------------------------------------
// Full-engine byte-identity: pool threads x shards matrix
// ---------------------------------------------------------------------

DatacronEngine::Config MatrixConfig(std::size_t shards) {
  DatacronEngine::Config cfg;
  cfg.areas.push_back(NamedArea{
      "port_alpha", Polygon::Rectangle(BoundingBox::Of(36, 24, 36.5, 24.5))});
  cfg.sectors.push_back(CapacityMonitor::Sector{
      "aegean", Polygon::Rectangle(BoundingBox::Of(35.0, 23.0, 39.0, 27.0)),
      5});
  cfg.hotspot_window = 10 * kMinute;
  cfg.hotspot.zscore_threshold = 2.0;
  cfg.num_shards = shards;
  cfg.epoch_size = 128;
  return cfg;
}

std::vector<PositionReport> MatrixStream() {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 10;
  fleet.duration = 30 * kMinute;
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  std::vector<PositionReport> merged =
      ObserveFleet(GenerateAisFleet(fleet), obs);

  AdsbGeneratorConfig air;
  air.region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
  air.num_airports = 3;
  air.num_flights = 5;
  air.duration = 30 * kMinute;
  air.departure_window = 10 * kMinute;
  ObservationConfig air_obs;
  air_obs.fixed_interval_ms = 10 * kSecond;
  const auto adsb = ObserveFleet(GenerateAdsbTraffic(air), air_obs);
  merged.insert(merged.end(), adsb.begin(), adsb.end());
  std::sort(merged.begin(), merged.end(), ReportTimeOrder());
  return merged;
}

struct MatrixRun {
  std::vector<Event> events;
  std::vector<Triple> triples;
  std::size_t dict_size = 0;
};

MatrixRun RunEngine(const std::vector<PositionReport>& stream,
                    std::size_t shards, ThreadPool* pool) {
  DatacronEngine engine(MatrixConfig(shards));
  MatrixRun run;
  run.events = engine.IngestBatch(stream, pool);
  const auto finish = engine.Finish();
  run.events.insert(run.events.end(), finish.begin(), finish.end());
  run.triples = engine.triples();
  run.dict_size = engine.dictionary()->size();
  return run;
}

TEST(EngineGlobalStageMatrixTest, ByteIdenticalAcrossThreadsAndShards) {
  const auto stream = MatrixStream();
  ASSERT_GT(stream.size(), 1500u);

  // Serial reference: per-report Ingest, no pool, one shard.
  DatacronEngine serial_engine(MatrixConfig(1));
  MatrixRun serial;
  for (const PositionReport& r : stream) {
    const auto evs = serial_engine.Ingest(r);
    serial.events.insert(serial.events.end(), evs.begin(), evs.end());
  }
  const auto finish = serial_engine.Finish();
  serial.events.insert(serial.events.end(), finish.begin(), finish.end());
  serial.triples = serial_engine.triples();
  serial.dict_size = serial_engine.dictionary()->size();

  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
      const MatrixRun run = RunEngine(stream, shards, &pool);
      ASSERT_EQ(serial.events.size(), run.events.size())
          << threads << " threads, " << shards << " shards";
      EXPECT_TRUE(serial.events == run.events)
          << threads << " threads, " << shards << " shards";
      EXPECT_TRUE(serial.triples == run.triples)
          << threads << " threads, " << shards << " shards";
      EXPECT_EQ(serial.dict_size, run.dict_size);
    }
  }
}

}  // namespace
}  // namespace datacron
