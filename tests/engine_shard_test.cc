// Byte-identity of the sharded engine runtime: IngestBatch at any shard
// count must reproduce the serial Ingest loop exactly — events, triples,
// episodes, trajectories and dictionary ids. Also unit-covers the
// ShardedRuntime scheduling invariants and OperatorMetrics::Merge.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <span>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"
#include "datacron/engine.h"
#include "sources/adsb_generator.h"
#include "sources/ais_generator.h"
#include "stream/operator.h"
#include "stream/sharded_runtime.h"

namespace datacron {
namespace {

// ---------------------------------------------------------------------
// ShardedRuntime units
// ---------------------------------------------------------------------

struct SlotRecord {
  std::size_t shard = 0;
  std::size_t seq = 0;  // per-shard sequence number at processing time
};

TEST(ShardedRuntimeTest, GlobalStageSeesInputOrderAndKeyedRoutingHolds) {
  constexpr std::size_t kShards = 5;
  std::vector<int> input(1000);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int>(i);
  }

  ShardedRuntime<int, SlotRecord>::Options opts;
  opts.num_shards = kShards;
  opts.epoch_size = 16;
  opts.max_epochs_in_flight = 2;
  ShardedRuntime<int, SlotRecord> runtime(opts);

  // Keyed state: one counter per shard, touched only by its own shard.
  std::vector<std::size_t> shard_seq(kShards, 0);
  std::vector<int> consumed;
  std::vector<SlotRecord> records(input.size());

  ThreadPool pool(4);
  runtime.Run(
      std::span<const int>(input), &pool,
      [](const int& v) { return static_cast<std::uint64_t>(v) % 7; },
      [&](std::size_t shard, const int& v, SlotRecord* slot, NoShardArena*) {
        slot->shard = shard;
        slot->seq = shard_seq[shard]++;
        records[static_cast<std::size_t>(v)] = *slot;
      },
      [&](std::span<const int> items, std::span<SlotRecord> slots,
          std::span<NoShardArena>) {
        (void)slots;
        consumed.insert(consumed.end(), items.begin(), items.end());
      });

  // The global stage consumed every item in input order.
  ASSERT_EQ(consumed, input);
  // Every item ran on the shard its key selects, and each shard saw its
  // items in input order (FIFO mailboxes, serialized drains).
  std::vector<std::size_t> expect_seq(kShards, 0);
  for (std::size_t i = 0; i < input.size(); ++i) {
    const std::size_t shard = (i % 7) % kShards;
    EXPECT_EQ(records[i].shard, shard);
    EXPECT_EQ(records[i].seq, expect_seq[shard]++);
  }
}

TEST(ShardedRuntimeTest, SerialFallbackStillRoutesByKey) {
  ShardedRuntime<int, std::size_t>::Options opts;
  opts.num_shards = 4;
  opts.epoch_size = 8;
  ShardedRuntime<int, std::size_t> runtime(opts);

  std::vector<int> input = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11};
  std::vector<std::size_t> shards_seen;
  runtime.Run(
      std::span<const int>(input), /*pool=*/nullptr,
      [](const int& v) { return static_cast<std::uint64_t>(v); },
      [&](std::size_t shard, const int& v, std::size_t* slot, NoShardArena*) {
        *slot = shard;
        EXPECT_EQ(shard, static_cast<std::size_t>(v) % 4);
        shards_seen.push_back(shard);
      },
      [](std::span<const int>, std::span<std::size_t>,
         std::span<NoShardArena>) {});
  EXPECT_EQ(shards_seen.size(), input.size());
}

TEST(ShardedRuntimeTest, KeyedExceptionPropagatesWithoutHanging) {
  ShardedRuntime<int, int>::Options opts;
  opts.num_shards = 3;
  opts.epoch_size = 4;
  ShardedRuntime<int, int> runtime(opts);

  std::vector<int> input(64);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int>(i);
  }
  ThreadPool pool(2);
  EXPECT_THROW(
      runtime.Run(
          std::span<const int>(input), &pool,
          [](const int& v) { return static_cast<std::uint64_t>(v); },
          [](std::size_t, const int& v, int* slot, NoShardArena*) {
            if (v == 17) throw std::runtime_error("keyed stage failure");
            *slot = v;
          },
          [](std::span<const int>, std::span<int>, std::span<NoShardArena>) {
          }),
      std::runtime_error);
}

TEST(ShardedRuntimeTest, ArenasAccumulatePerShardPerEpoch) {
  struct Watermark {
    std::size_t shard = 0;
    std::size_t end = 0;  // arena size after this item ran
  };
  ShardedRuntime<int, Watermark, std::vector<int>>::Options opts;
  opts.num_shards = 3;
  opts.epoch_size = 10;
  ShardedRuntime<int, Watermark, std::vector<int>> runtime(opts);

  std::vector<int> input(100);
  for (std::size_t i = 0; i < input.size(); ++i) {
    input[i] = static_cast<int>(i);
  }
  ThreadPool pool(4);
  std::vector<int> replayed;
  runtime.Run(
      std::span<const int>(input), &pool,
      [](const int& v) { return static_cast<std::uint64_t>(v); },
      [](std::size_t shard, const int& v, Watermark* slot,
         std::vector<int>* arena) {
        arena->push_back(v);
        slot->shard = shard;
        slot->end = arena->size();
      },
      [&](std::span<const int> items, std::span<Watermark> slots,
          std::span<std::vector<int>> arenas) {
        // Fresh arenas every epoch, one per shard; per-item watermarks
        // slice them back into input order.
        ASSERT_EQ(arenas.size(), 3u);
        std::size_t total = 0;
        for (const std::vector<int>& a : arenas) total += a.size();
        EXPECT_EQ(total, items.size());
        std::vector<std::size_t> cursor(arenas.size(), 0);
        for (std::size_t i = 0; i < items.size(); ++i) {
          const Watermark& wm = slots[i];
          ASSERT_EQ(wm.end, cursor[wm.shard] + 1);
          replayed.push_back(arenas[wm.shard][cursor[wm.shard]]);
          cursor[wm.shard] = wm.end;
        }
      });
  EXPECT_EQ(replayed, input);
}

// ---------------------------------------------------------------------
// OperatorMetrics::Merge
// ---------------------------------------------------------------------

TEST(OperatorMetricsTest, MergeFoldsPerShardCopies) {
  FilterOperator<int> even_a("evens", [](const int& v) { return v % 2 == 0; });
  FilterOperator<int> even_b("evens", [](const int& v) { return v % 2 == 0; });
  std::vector<int> out;
  for (int i = 0; i < 10; ++i) even_a.ProcessCounted(i, &out);
  for (int i = 10; i < 30; ++i) even_b.ProcessCounted(i, &out);

  OperatorMetrics merged;
  merged.Merge(even_a.metrics());
  merged.Merge(even_b.metrics());
  EXPECT_EQ(merged.name, "evens");
  EXPECT_EQ(merged.items_in, 30u);
  EXPECT_EQ(merged.items_out, 15u);
  EXPECT_DOUBLE_EQ(merged.SelectivityPct(), 50.0);
  EXPECT_EQ(merged.process_nanos.count(), 30u);
  EXPECT_EQ(merged.latency_ns.count(), 30u);
  EXPECT_GE(merged.latency_ns.p99(), merged.latency_ns.p50());
}

// ---------------------------------------------------------------------
// Engine byte-identity
// ---------------------------------------------------------------------

DatacronEngine::Config ShardConfig(std::size_t num_shards,
                                   std::size_t epoch_size) {
  DatacronEngine::Config cfg;
  cfg.areas.push_back(NamedArea{
      "port_alpha", Polygon::Rectangle(BoundingBox::Of(36, 24, 36.5, 24.5))});
  cfg.sectors.push_back(CapacityMonitor::Sector{
      "aegean", Polygon::Rectangle(BoundingBox::Of(35.0, 23.0, 39.0, 27.0)),
      5});
  cfg.hotspot_window = 10 * kMinute;
  cfg.hotspot.zscore_threshold = 2.0;
  cfg.gap.gap_threshold = 5 * kMinute;
  cfg.synopses.gap_threshold = 5 * kMinute;
  cfg.num_shards = num_shards;
  cfg.epoch_size = epoch_size;
  return cfg;
}

/// Mixed AIS + ADS-B replay merged in arrival order, with an injected
/// per-entity silence so gap events and gap critical points exercise the
/// shard continuation state (including across epoch boundaries).
std::vector<PositionReport> MixedStream() {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 12;
  fleet.duration = 40 * kMinute;
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  std::vector<PositionReport> ais = ObserveFleet(GenerateAisFleet(fleet), obs);

  AdsbGeneratorConfig air;
  air.region = BoundingBox::Of(35.0, 23.0, 39.0, 27.0);
  air.num_airports = 4;
  air.num_flights = 6;
  air.duration = 40 * kMinute;
  air.departure_window = 10 * kMinute;
  std::vector<PositionReport> adsb;
  ObservationConfig air_obs;
  air_obs.fixed_interval_ms = 10 * kSecond;
  adsb = ObserveFleet(GenerateAdsbTraffic(air), air_obs);

  std::vector<PositionReport> merged;
  merged.reserve(ais.size() + adsb.size());
  merged.insert(merged.end(), ais.begin(), ais.end());
  merged.insert(merged.end(), adsb.begin(), adsb.end());
  std::sort(merged.begin(), merged.end(), ReportTimeOrder());

  // Silence one vessel for 20 minutes mid-stream: drop its reports in
  // the window so the detector sees a communication gap on reappearance.
  const EntityId silenced = merged.front().entity_id;
  const TimestampMs t0 = merged.front().timestamp + 10 * kMinute;
  const TimestampMs t1 = t0 + 20 * kMinute;
  std::erase_if(merged, [&](const PositionReport& r) {
    return r.entity_id == silenced && r.timestamp >= t0 && r.timestamp < t1;
  });
  return merged;
}

struct EngineRun {
  std::vector<Event> events;
  std::vector<Triple> triples;
  std::vector<Episode> episodes;
  std::size_t critical_points = 0;
  std::size_t reports = 0;
  std::size_t dict_size = 0;
  std::size_t entity_count = 0;
  std::size_t total_points = 0;
};

EngineRun Snapshot(DatacronEngine* engine, std::vector<Event> events) {
  EngineRun run;
  run.events = std::move(events);
  run.triples = engine->triples();
  run.episodes = engine->episodes();
  run.critical_points = engine->critical_points();
  run.reports = engine->reports_ingested();
  run.dict_size = engine->dictionary()->size();
  run.entity_count = engine->trajectories().EntityCount();
  run.total_points = engine->trajectories().TotalPoints();
  return run;
}

EngineRun RunSerial(const std::vector<PositionReport>& stream,
                    bool rdfize_all = false) {
  DatacronEngine::Config cfg = ShardConfig(1, 1024);
  cfg.rdfize_all_reports = rdfize_all;
  DatacronEngine engine(cfg);
  std::vector<Event> events;
  for (const PositionReport& r : stream) {
    const auto evs = engine.Ingest(r);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  return Snapshot(&engine, std::move(events));
}

EngineRun RunSharded(const std::vector<PositionReport>& stream,
                     std::size_t shards, std::size_t epoch_size,
                     ThreadPool* pool, bool rdfize_all = false) {
  DatacronEngine::Config cfg = ShardConfig(shards, epoch_size);
  cfg.rdfize_all_reports = rdfize_all;
  DatacronEngine engine(cfg);
  std::vector<Event> events = engine.IngestBatch(stream, pool);
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  return Snapshot(&engine, std::move(events));
}

void ExpectIdentical(const EngineRun& a, const EngineRun& b) {
  EXPECT_EQ(a.reports, b.reports);
  EXPECT_EQ(a.critical_points, b.critical_points);
  EXPECT_EQ(a.dict_size, b.dict_size);
  EXPECT_EQ(a.entity_count, b.entity_count);
  EXPECT_EQ(a.total_points, b.total_points);
  ASSERT_EQ(a.events.size(), b.events.size());
  EXPECT_TRUE(a.events == b.events);
  ASSERT_EQ(a.triples.size(), b.triples.size());
  EXPECT_TRUE(a.triples == b.triples);
  ASSERT_EQ(a.episodes.size(), b.episodes.size());
  EXPECT_TRUE(a.episodes == b.episodes);
}

TEST(EngineShardTest, ByteIdenticalAcrossShardCounts) {
  const auto stream = MixedStream();
  ASSERT_GT(stream.size(), 1000u);
  const EngineRun serial = RunSerial(stream);
  ASSERT_FALSE(serial.events.empty());
  ASSERT_FALSE(serial.triples.empty());
  ASSERT_FALSE(serial.episodes.empty());
  // The injected silence produced gap events through the sharded state.
  bool has_gap = false;
  for (const Event& e : serial.events) {
    if (e.kind == EventKind::kGap) has_gap = true;
  }
  EXPECT_TRUE(has_gap);

  ThreadPool pool(4);
  for (const std::size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    const EngineRun run = RunSharded(stream, shards, 128, &pool);
    ExpectIdentical(serial, run);
  }
}

TEST(EngineShardTest, ByteIdenticalAtEpochBoundaryEdgeCases) {
  const auto stream = MixedStream();
  const EngineRun serial = RunSerial(stream);
  ThreadPool pool(4);
  // Tiny epochs force gap/flush edge cases to straddle epoch barriers;
  // max-in-flight 4 keeps several epochs live at once.
  for (const std::size_t epoch_size : {1u, 32u}) {
    SCOPED_TRACE(epoch_size);
    const EngineRun run = RunSharded(stream, 4, epoch_size, &pool);
    ExpectIdentical(serial, run);
  }
}

TEST(EngineShardTest, ByteIdenticalWhenEpochExceedsBatch) {
  // One epoch swallows the whole stream: the coalesced per-epoch merge
  // runs exactly once and must still replay input order.
  const auto stream = MixedStream();
  const EngineRun serial = RunSerial(stream);
  ThreadPool pool(4);
  const EngineRun run =
      RunSharded(stream, 4, stream.size() * 2, &pool);
  ExpectIdentical(serial, run);
}

TEST(EngineShardTest, ByteIdenticalWhenBatchesStraddleEpochFlushes) {
  // Feed IngestBatch in uneven chunks that never align with the epoch
  // size, so shard-epoch arenas are cut mid-entity and continuation
  // state (sequence links, gap detection) must survive the seams.
  const auto stream = MixedStream();
  const EngineRun serial = RunSerial(stream);
  ThreadPool pool(4);
  DatacronEngine engine(ShardConfig(4, 128));
  std::vector<Event> events;
  const std::span<const PositionReport> all(stream);
  for (std::size_t pos = 0; pos < all.size(); pos += 777) {
    const auto evs =
        engine.IngestBatch(all.subspan(pos, std::min<std::size_t>(
                                                777, all.size() - pos)),
                           &pool);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  ExpectIdentical(serial, Snapshot(&engine, std::move(events)));
}

TEST(EngineShardTest, ByteIdenticalWhenRdfizingAllReports) {
  const auto stream = MixedStream();
  const EngineRun serial = RunSerial(stream, /*rdfize_all=*/true);
  ThreadPool pool(4);
  const EngineRun run =
      RunSharded(stream, 4, 128, &pool, /*rdfize_all=*/true);
  ExpectIdentical(serial, run);
}

TEST(EngineShardTest, NullPoolFallbackMatchesSerial) {
  const auto stream = MixedStream();
  const EngineRun serial = RunSerial(stream);
  const EngineRun run = RunSharded(stream, 4, 128, /*pool=*/nullptr);
  ExpectIdentical(serial, run);
}

TEST(EngineShardTest, MixedIngestThenBatchMatchesSerial) {
  const auto stream = MixedStream();
  const EngineRun serial = RunSerial(stream);

  DatacronEngine engine(ShardConfig(4, 128));
  ThreadPool pool(4);
  std::vector<Event> events;
  const std::size_t half = stream.size() / 2;
  for (std::size_t i = 0; i < half; ++i) {
    const auto evs = engine.Ingest(stream[i]);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  const auto batch_events = engine.IngestBatch(
      std::span<const PositionReport>(stream).subspan(half), &pool);
  events.insert(events.end(), batch_events.begin(), batch_events.end());
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  ExpectIdentical(serial, Snapshot(&engine, std::move(events)));
}

TEST(EngineShardTest, MetricsReportCoversAllDetectors) {
  DatacronEngine engine(ShardConfig(4, 128));
  ThreadPool pool(2);
  const auto stream = MixedStream();
  engine.IngestBatch(stream, &pool);
  const std::string report = engine.MetricsReport();
  for (const char* name :
       {"critical_point_detector", "area_event_detector",
        "loitering_detector", "gap_detector", "speed_anomaly_detector",
        "proximity_detector", "capacity_monitor", "hotspot_detector"}) {
    EXPECT_NE(report.find(name), std::string::npos) << name;
  }
  // The merged keyed rows account for every report exactly once.
  EXPECT_NE(report.find("cep-keyed"), std::string::npos);
  EXPECT_NE(report.find("cep-global"), std::string::npos);
}

}  // namespace
}  // namespace datacron
