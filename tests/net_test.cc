// Wire codec and transport units: encode/decode round-trips over randomized
// messages (seeded, reproducible), rejection of truncated and corrupted
// payloads without crashing, frame checksum behavior, and loopback/TCP
// transport semantics.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/codec.h"
#include "net/transport.h"
#include "net/wire.h"
#include "sub/subscription.h"

namespace datacron {
namespace {

// ---------------------------------------------------------------------
// Randomized message builders (seeded — every failure is reproducible).
// ---------------------------------------------------------------------

std::string RandString(Rng& rng, std::size_t max_len) {
  const std::size_t len =
      static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(max_len)));
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng.UniformInt(0, 25)));
  }
  return s;
}

PositionReport RandReport(Rng& rng) {
  PositionReport r;
  r.entity_id = static_cast<EntityId>(rng.NextUint64());
  r.domain = rng.Bernoulli(0.5) ? Domain::kMaritime : Domain::kAviation;
  r.timestamp = rng.UniformInt(0, 1'000'000'000);
  r.position = {rng.Uniform(-90, 90), rng.Uniform(-180, 180),
                rng.Uniform(0, 12000)};
  r.speed_mps = rng.Uniform(0, 300);
  r.course_deg = rng.Uniform(0, 360);
  r.vertical_rate_mps = rng.Uniform(-20, 20);
  return r;
}

Event RandEvent(Rng& rng) {
  Event e;
  e.kind = static_cast<EventKind>(rng.UniformInt(0, 11));
  e.time = rng.UniformInt(0, 1'000'000'000);
  e.predicted_time = e.time + rng.UniformInt(0, 60'000);
  const std::size_t n = static_cast<std::size_t>(rng.UniformInt(0, 3));
  for (std::size_t i = 0; i < n; ++i) {
    e.entities.push_back(static_cast<EntityId>(rng.NextUint64()));
  }
  e.position = {rng.Uniform(-90, 90), rng.Uniform(-180, 180), 0.0};
  e.label = RandString(rng, 12);
  const std::size_t attrs = static_cast<std::size_t>(rng.UniformInt(0, 3));
  for (std::size_t i = 0; i < attrs; ++i) {
    e.attributes[RandString(rng, 8)] = rng.Uniform(-1e6, 1e6);
  }
  return e;
}

Episode RandEpisode(Rng& rng) {
  Episode e;
  e.entity = static_cast<EntityId>(rng.NextUint64());
  e.kind = static_cast<EpisodeKind>(rng.UniformInt(0, 2));
  e.start_time = rng.UniformInt(0, 1'000'000'000);
  e.end_time = e.start_time + rng.UniformInt(0, 3'600'000);
  e.start_pos = {rng.Uniform(-90, 90), rng.Uniform(-180, 180), 0.0};
  e.end_pos = {rng.Uniform(-90, 90), rng.Uniform(-180, 180), 0.0};
  e.area = RandString(rng, 10);
  e.displacement_m = rng.Uniform(0, 1e5);
  e.path_m = e.displacement_m + rng.Uniform(0, 1e4);
  return e;
}

TermExport RandTerm(Rng& rng) {
  TermExport t;
  t.text = RandString(rng, 24);
  t.kind = static_cast<TermKind>(rng.UniformInt(0, 4));
  return t;
}

WireReportResult RandResult(Rng& rng) {
  WireReportResult res;
  res.cp_count = rng.NextUint64() % 4;
  res.new_term_count = rng.NextUint64() % 6;
  for (std::int64_t i = rng.UniformInt(0, 2); i > 0; --i) {
    res.keyed_events.push_back(RandEvent(rng));
  }
  for (std::int64_t i = rng.UniformInt(0, 2); i > 0; --i) {
    res.episodes.push_back(RandEpisode(rng));
  }
  for (std::int64_t i = rng.UniformInt(0, 4); i > 0; --i) {
    res.triples.push_back({rng.NextUint64() % 100 + 1,
                           rng.NextUint64() % 100 + 1,
                           rng.NextUint64() % 100 + 1});
  }
  for (std::int64_t i = rng.UniformInt(0, 2); i > 0; --i) {
    res.tags.push_back(
        {rng.NextUint64() % 100 + 1,
         StTag{{static_cast<std::int32_t>(rng.UniformInt(-50, 50)),
                static_cast<std::int32_t>(rng.UniformInt(-50, 50))},
               rng.UniformInt(0, 1000)}});
  }
  for (std::int64_t i = rng.UniformInt(0, 2); i > 0; --i) {
    res.node_geo.push_back(
        {rng.NextUint64() % 100 + 1,
         NodeGeo{rng.Uniform(-90, 90), rng.Uniform(-180, 180), 0.0,
                 rng.UniformInt(0, 1'000'000)}});
  }
  for (std::int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
    SubDelta d;
    d.sub = rng.NextUint64() % 100 + 1;
    d.kind = static_cast<DeltaKind>(rng.UniformInt(0, 6));
    d.entity = static_cast<EntityId>(rng.NextUint64());
    d.time = rng.UniformInt(0, 1'000'000'000);
    d.value = rng.Uniform(0, 1e6);
    res.sub_deltas.push_back(d);
  }
  for (std::int64_t i = rng.UniformInt(0, 2); i > 0; --i) {
    res.sub_counts.push_back({rng.NextUint64() % 100 + 1,
                              static_cast<double>(rng.UniformInt(1, 50))});
  }
  res.synopses_ns = rng.UniformInt(0, 1'000'000);
  res.transform_ns = rng.UniformInt(0, 1'000'000);
  res.keyed_cep_ns = rng.UniformInt(0, 1'000'000);
  return res;
}

/// Valid by ValidateSpec — the Subscribe decoder validates, so round-trip
/// inputs must be legal subscriptions.
SubscriptionSpec RandSpec(Rng& rng) {
  switch (rng.UniformInt(0, 2)) {
    case 0: {
      GeofenceSpec g;
      const double lat = rng.Uniform(-60, 60);
      const double lon = rng.Uniform(-160, 160);
      if (rng.Bernoulli(0.3)) {
        const std::int64_t n = rng.UniformInt(3, 8);
        for (std::int64_t i = 0; i < n; ++i) {
          g.polygon.push_back({lat + rng.Uniform(-2, 2),
                               lon + rng.Uniform(-2, 2)});
        }
      } else if (rng.Bernoulli(0.2)) {
        // Antimeridian wrap: min_lon > max_lon by convention.
        g.bbox = BoundingBox::Of(lat, 175.0, lat + 5.0, -175.0);
      } else {
        g.bbox = BoundingBox::Of(lat, lon, lat + rng.Uniform(0.1, 5),
                                 lon + rng.Uniform(0.1, 5));
      }
      g.all_entities = rng.Bernoulli(0.3);
      if (!g.all_entities) {
        g.entity = static_cast<EntityId>(rng.UniformInt(1, 1'000'000));
      }
      if (rng.Bernoulli(0.5)) g.dwell_ms = rng.UniformInt(0, 600'000);
      return SubscriptionSpec::Geofence(std::move(g));
    }
    case 1: {
      ProximitySpec p;
      p.entity = static_cast<EntityId>(rng.UniformInt(1, 1'000'000));
      p.min_interval_ms = rng.UniformInt(0, 600'000);
      return SubscriptionSpec::Proximity(p);
    }
    default: {
      HotspotSpec h;
      const double lat = rng.Uniform(-60, 60);
      const double lon = rng.Uniform(-160, 160);
      h.bbox = BoundingBox::Of(lat, lon, lat + rng.Uniform(0.1, 5),
                               lon + rng.Uniform(0.1, 5));
      h.threshold = rng.Uniform(0.5, 500);
      h.window_epochs = static_cast<std::uint32_t>(rng.UniformInt(1, 16));
      return SubscriptionSpec::Hotspot(h);
    }
  }
}

SubDelta RandDelta(Rng& rng) {
  SubDelta d;
  d.sub = static_cast<SubscriptionId>(rng.UniformInt(1, 1'000'000));
  d.kind = static_cast<DeltaKind>(rng.UniformInt(0, 6));
  d.entity = static_cast<EntityId>(rng.NextUint64());
  d.time = rng.UniformInt(0, 1'000'000'000);
  d.value = rng.Uniform(-1e6, 1e6);
  return d;
}

CriticalPoint RandCriticalPoint(Rng& rng) {
  CriticalPoint cp;
  cp.report = RandReport(rng);
  cp.type = static_cast<CriticalPointType>(rng.UniformInt(0, 9));
  return cp;
}

MetricsRow RandMetricsRow(Rng& rng) {
  MetricsRow row;
  row.stage = RandString(rng, 10);
  row.metrics.name = RandString(rng, 16);
  const std::size_t samples = static_cast<std::size_t>(rng.UniformInt(0, 64));
  for (std::size_t i = 0; i < samples; ++i) {
    const double ns = rng.Uniform(10, 1e7);
    row.metrics.process_nanos.Add(ns);
    row.metrics.latency_ns.Add(ns);
  }
  row.metrics.items_in = samples;
  row.metrics.items_out = samples / 2;
  row.instances = static_cast<std::size_t>(rng.UniformInt(1, 8));
  return row;
}

template <typename Msg>
void ExpectRoundTrip(const Msg& msg) {
  const std::string payload = Encode(msg);
  Msg decoded;
  const Status s = Decode(payload, &decoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(msg == decoded);
}

/// Every strict prefix of a valid payload must be rejected — the decoder
/// reads deterministically from the front, so truncation always surfaces
/// as ParseError, never a partial decode or a crash.
template <typename Msg>
void ExpectTruncationRejected(const Msg& msg) {
  const std::string payload = Encode(msg);
  for (std::size_t len = 0; len < payload.size(); ++len) {
    Msg decoded;
    const Status s = Decode(payload.substr(0, len), &decoded);
    EXPECT_FALSE(s.ok()) << "prefix length " << len << " of "
                         << payload.size();
  }
}

TEST(CodecTest, RoundTripPropertyOverRandomMessages) {
  Rng rng(0xC0DEC);
  for (int trial = 0; trial < 40; ++trial) {
    SCOPED_TRACE(trial);
    HelloMsg hello;
    hello.node_id = static_cast<std::uint32_t>(rng.UniformInt(0, 7));
    hello.num_nodes = hello.node_id + 1;
    for (std::int64_t i = rng.UniformInt(0, 10); i > 0; --i) {
      hello.baseline.push_back(RandTerm(rng));
    }
    ExpectRoundTrip(hello);

    ReportBatchMsg batch;
    batch.epoch = rng.UniformInt(0, 1000);
    for (std::int64_t i = rng.UniformInt(0, 8); i > 0; --i) {
      batch.reports.push_back(RandReport(rng));
    }
    ExpectRoundTrip(batch);

    EpochResultMsg result;
    result.epoch = rng.UniformInt(0, 1000);
    result.dict_size_before = rng.NextUint64() % 10000;
    for (std::int64_t i = rng.UniformInt(0, 4); i > 0; --i) {
      result.results.push_back(RandResult(rng));
    }
    // The coalesced per-epoch dictionary delta travels beside the
    // per-report results.
    for (std::int64_t i = rng.UniformInt(0, 8); i > 0; --i) {
      result.new_terms.push_back(RandTerm(rng));
    }
    ExpectRoundTrip(result);

    WatermarkMsg wm;
    wm.epoch = rng.UniformInt(0, 1000);
    ExpectRoundTrip(wm);

    FlushResultMsg flush;
    for (std::int64_t i = rng.UniformInt(0, 5); i > 0; --i) {
      flush.flush.critical_points.push_back(RandCriticalPoint(rng));
    }
    for (std::int64_t i = rng.UniformInt(0, 5); i > 0; --i) {
      flush.flush.continuations.push_back(
          {static_cast<EntityId>(rng.NextUint64()), rng.Bernoulli(0.5),
           rng.UniformInt(0, 1'000'000'000), rng.Bernoulli(0.5)});
    }
    for (std::int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
      flush.flush.completed_episodes.push_back(RandEpisode(rng));
    }
    for (std::int64_t i = rng.UniformInt(0, 3); i > 0; --i) {
      flush.flush.trailing_episodes.push_back(RandEpisode(rng));
    }
    for (std::int64_t i = rng.UniformInt(0, 2); i > 0; --i) {
      flush.flush.events.push_back(RandEvent(rng));
    }
    ExpectRoundTrip(flush);

    MetricsResultMsg metrics;
    for (std::int64_t i = rng.UniformInt(0, 6); i > 0; --i) {
      metrics.rows.push_back(RandMetricsRow(rng));
    }
    ExpectRoundTrip(metrics);
  }
}

TEST(CodecTest, SubscriptionMessagesRoundTrip) {
  Rng rng(0x5AB5C12B);
  for (int trial = 0; trial < 60; ++trial) {
    SCOPED_TRACE(trial);
    SubscribeMsg sub;
    sub.id = rng.NextUint64() % 1'000'000;
    sub.subscriber = static_cast<SubscriberId>(rng.UniformInt(0, 1'000));
    sub.spec = RandSpec(rng);
    ExpectRoundTrip(sub);

    UnsubscribeMsg unsub;
    unsub.id = rng.NextUint64() % 1'000'000 + 1;
    unsub.subscriber = static_cast<SubscriberId>(rng.UniformInt(0, 1'000));
    ExpectRoundTrip(unsub);

    SubAckMsg ack;
    ack.id = rng.NextUint64() % 1'000'000;
    ack.ok = rng.Bernoulli(0.7);
    if (!ack.ok) ack.error = RandString(rng, 24);
    ExpectRoundTrip(ack);

    DeltaBatchMsg batch;
    batch.batch.subscriber =
        static_cast<SubscriberId>(rng.UniformInt(0, 1'000));
    batch.batch.epoch = rng.UniformInt(0, 1'000'000);
    for (std::int64_t i = rng.UniformInt(0, 6); i > 0; --i) {
      batch.batch.deltas.push_back(RandDelta(rng));
    }
    ExpectRoundTrip(batch);
  }
}

TEST(CodecTest, SubscriptionTruncationRejectedAtEveryPrefix) {
  Rng rng(0x7A12);
  SubscribeMsg sub;
  sub.id = 7;
  sub.subscriber = 3;
  sub.spec = RandSpec(rng);
  ExpectTruncationRejected(sub);

  UnsubscribeMsg unsub;
  unsub.id = 9;
  unsub.subscriber = 1;
  ExpectTruncationRejected(unsub);

  SubAckMsg ack;
  ack.id = 11;
  ack.ok = false;
  ack.error = "nope";
  ExpectTruncationRejected(ack);

  DeltaBatchMsg batch;
  batch.batch.subscriber = 5;
  batch.batch.epoch = 42;
  for (int i = 0; i < 3; ++i) batch.batch.deltas.push_back(RandDelta(rng));
  ExpectTruncationRejected(batch);
}

TEST(CodecTest, SubscriptionCorruptedBytesNeverCrashTheDecoder) {
  Rng rng(0x5AB0BAD);
  SubscribeMsg sub;
  sub.id = 12;
  sub.subscriber = 4;
  sub.spec = RandSpec(rng);
  std::string payload = Encode(sub);
  for (std::size_t off = 0; off < payload.size(); ++off) {
    std::string corrupt = payload;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x5A);
    SubscribeMsg decoded;
    (void)Decode(corrupt, &decoded);
  }

  DeltaBatchMsg batch;
  batch.batch.subscriber = 2;
  batch.batch.epoch = 3;
  for (int i = 0; i < 4; ++i) batch.batch.deltas.push_back(RandDelta(rng));
  payload = Encode(batch);
  for (std::size_t off = 0; off < payload.size(); ++off) {
    std::string corrupt = payload;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x5A);
    DeltaBatchMsg decoded;
    (void)Decode(corrupt, &decoded);
  }
}

TEST(CodecTest, SubscribePredicatePayloadBoundsAreEnforced) {
  // Hand-built frames: envelope + id + subscriber + length-prefixed
  // predicate. The decoder must reject before parsing a byte of an empty
  // or oversized predicate.
  const auto frame_with_predicate = [](const std::string& predicate) {
    WireWriter w;
    w.U16(static_cast<std::uint16_t>(MsgType::kSubscribe));
    w.U64(1);
    w.U32(2);
    w.Str(predicate);
    return w.Take();
  };

  SubscribeMsg decoded;
  Status s = Decode(frame_with_predicate(""), &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("empty"), std::string::npos) << s.ToString();

  s = Decode(frame_with_predicate(std::string(kMaxSubPredicateBytes + 1,
                                              '\x01')),
             &decoded);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("oversized"), std::string::npos)
      << s.ToString();

  // A well-formed predicate that fails semantic validation (hotspot with
  // zero threshold) is also rejected at decode time.
  SubscribeMsg bad;
  bad.subscriber = 2;
  bad.spec = SubscriptionSpec::Hotspot(
      {BoundingBox::Of(0, 0, 1, 1), /*threshold=*/0.0,
       /*window_epochs=*/1});
  EXPECT_FALSE(Decode(Encode(bad), &decoded).ok());

  // An out-of-range delta kind inside a batch is corruption.
  DeltaBatchMsg batch;
  batch.batch.subscriber = 1;
  SubDelta d;
  d.kind = static_cast<DeltaKind>(0x7E);
  batch.batch.deltas.push_back(d);
  DeltaBatchMsg decoded_batch;
  EXPECT_FALSE(Decode(Encode(batch), &decoded_batch).ok());
}

TEST(CodecTest, MetricsRoundTripPreservesMergeBehavior) {
  // The raw Welford + histogram-bucket encoding must reproduce an
  // accumulator that merges exactly like the original — that is what
  // makes fleet-wide metrics merging across processes possible.
  Rng rng(0x5EED);
  MetricsRow a = RandMetricsRow(rng);
  MetricsRow b = RandMetricsRow(rng);
  MetricsResultMsg msg;
  msg.rows = {a, b};
  MetricsResultMsg decoded;
  ASSERT_TRUE(Decode(Encode(msg), &decoded).ok());

  OperatorMetrics direct = a.metrics;
  direct.Merge(b.metrics);
  OperatorMetrics via_wire = decoded.rows[0].metrics;
  via_wire.Merge(decoded.rows[1].metrics);
  EXPECT_TRUE(direct == via_wire);
  EXPECT_DOUBLE_EQ(direct.process_nanos.mean(),
                   via_wire.process_nanos.mean());
  EXPECT_DOUBLE_EQ(direct.latency_ns.p99(), via_wire.latency_ns.p99());
}

TEST(CodecTest, TruncatedPayloadsAreRejectedAtEveryPrefix) {
  Rng rng(0x7A11);
  EpochResultMsg result;
  result.epoch = 3;
  result.dict_size_before = 17;
  result.results.push_back(RandResult(rng));
  result.new_terms.push_back(RandTerm(rng));
  ExpectTruncationRejected(result);

  FlushResultMsg flush;
  flush.flush.critical_points.push_back(RandCriticalPoint(rng));
  flush.flush.continuations.push_back({42, true, 1234, false});
  ExpectTruncationRejected(flush);

  MetricsResultMsg metrics;
  metrics.rows.push_back(RandMetricsRow(rng));
  ExpectTruncationRejected(metrics);
}

TEST(CodecTest, CorruptedBytesNeverCrashTheDecoder) {
  Rng rng(0xBADF00D);
  EpochResultMsg result;
  result.epoch = 1;
  for (int i = 0; i < 3; ++i) result.results.push_back(RandResult(rng));
  const std::string payload = Encode(result);

  // Single-byte corruption at every offset: the decoder must return
  // (either outcome is legal for payload bytes — a flipped double is just
  // a different double) without crashing or over-allocating.
  for (std::size_t off = 0; off < payload.size(); ++off) {
    std::string corrupt = payload;
    corrupt[off] = static_cast<char>(corrupt[off] ^ 0x5A);
    EpochResultMsg decoded;
    (void)Decode(corrupt, &decoded);
  }
}

TEST(CodecTest, StructuralCorruptionIsRejected) {
  WatermarkMsg wm;
  wm.epoch = 9;
  std::string payload = Encode(wm);

  // Wrong type tag.
  std::string wrong_type = payload;
  wrong_type[0] = static_cast<char>(0x7F);
  WatermarkMsg decoded;
  EXPECT_FALSE(Decode(wrong_type, &decoded).ok());
  MsgType type;
  EXPECT_FALSE(DecodeType(wrong_type, &type).ok());

  // Trailing bytes.
  std::string trailing = payload + "x";
  EXPECT_FALSE(Decode(trailing, &decoded).ok());

  // Inflated sequence count: a count far beyond the remaining payload is
  // caught before any allocation happens.
  ReportBatchMsg batch;
  batch.epoch = 1;
  batch.reports.push_back(PositionReport{});
  std::string inflated = Encode(batch);
  // The count field sits right after the u16 type and i64 epoch.
  inflated[10] = static_cast<char>(0xFF);
  inflated[11] = static_cast<char>(0xFF);
  inflated[12] = static_cast<char>(0xFF);
  inflated[13] = static_cast<char>(0xFF);
  ReportBatchMsg decoded_batch;
  EXPECT_FALSE(Decode(inflated, &decoded_batch).ok());

  // Out-of-range enum (Domain byte of the first report).
  std::string bad_enum = Encode(batch);
  bad_enum[14 + 4] = static_cast<char>(0x9);
  EXPECT_FALSE(Decode(bad_enum, &decoded_batch).ok());
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

TEST(FrameTest, EncodeDecodeVerifyRoundTrip) {
  const std::string payload = "the quick brown fox";
  const std::string frame = EncodeFrame(payload);
  ASSERT_EQ(frame.size(), kFrameHeaderBytes + payload.size());

  std::uint32_t len = 0;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &len).ok());
  EXPECT_EQ(len, payload.size());
  EXPECT_TRUE(
      VerifyFramePayload(frame.data(), frame.substr(kFrameHeaderBytes))
          .ok());
}

TEST(FrameTest, BadMagicAndOversizeLengthAreRejected) {
  std::string frame = EncodeFrame("abc");
  std::uint32_t len = 0;
  frame[0] = 'X';
  EXPECT_FALSE(DecodeFrameHeader(frame.data(), &len).ok());

  WireWriter w;
  w.U32(kFrameMagic);
  w.U32(kMaxFramePayloadBytes + 1);
  w.U32(0);
  EXPECT_FALSE(DecodeFrameHeader(w.data().data(), &len).ok());
}

TEST(FrameTest, ChecksumCatchesPayloadCorruption) {
  const std::string payload = "sensitive bits";
  const std::string frame = EncodeFrame(payload);
  std::string corrupt = frame.substr(kFrameHeaderBytes);
  corrupt[3] = static_cast<char>(corrupt[3] ^ 0x01);
  EXPECT_FALSE(VerifyFramePayload(frame.data(), corrupt).ok());
  // Length mismatch is also caught.
  EXPECT_FALSE(VerifyFramePayload(frame.data(), payload + "z").ok());
}

// ---------------------------------------------------------------------
// Transports
// ---------------------------------------------------------------------

TEST(LoopbackTransportTest, DeliversInFifoOrderBothWays) {
  auto [a, b] = LoopbackTransport::CreatePair();
  ASSERT_TRUE(a->Send("one").ok());
  ASSERT_TRUE(a->Send("two").ok());
  ASSERT_TRUE(b->Send("reply").ok());

  Result<std::string> r1 = b->Recv();
  Result<std::string> r2 = b->Recv();
  Result<std::string> r3 = a->Recv();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1.value(), "one");
  EXPECT_EQ(r2.value(), "two");
  EXPECT_EQ(r3.value(), "reply");
}

TEST(LoopbackTransportTest, CloseWakesBlockedReceiver) {
  auto [a, b] = LoopbackTransport::CreatePair();
  std::thread closer([&a] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->Close();
  });
  Result<std::string> r = b->Recv();
  closer.join();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_FALSE(b->Send("late").ok());
}

TEST(TcpTransportTest, FramedRoundTripIncludingLargeAndEmptyPayloads) {
  Result<std::unique_ptr<TcpListener>> listener = TcpListener::Create();
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();

  Result<std::unique_ptr<Transport>> client =
      TcpConnect(listener.value()->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  Result<std::unique_ptr<Transport>> server = listener.value()->Accept();
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::string big(1 << 20, '\0');
  Rng rng(0xB16);
  for (char& c : big) c = static_cast<char>(rng.NextUint64());

  ASSERT_TRUE(client.value()->Send("hello").ok());
  ASSERT_TRUE(client.value()->Send("").ok());
  ASSERT_TRUE(client.value()->Send(big).ok());

  Result<std::string> r1 = server.value()->Recv();
  Result<std::string> r2 = server.value()->Recv();
  Result<std::string> r3 = server.value()->Recv();
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1.value(), "hello");
  EXPECT_EQ(r2.value(), "");
  EXPECT_TRUE(r3.value() == big);

  client.value()->Close();
  Result<std::string> eof = server.value()->Recv();
  EXPECT_FALSE(eof.ok());
  EXPECT_EQ(eof.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TcpTransportTest, GarbageStreamIsRejectedNotCrashed) {
  Result<std::unique_ptr<TcpListener>> listener = TcpListener::Create();
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value()->port();

  // A raw socket writing non-frame bytes: Recv must fail with ParseError
  // (bad magic), not hang or crash.
  std::thread writer([port] {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    const char garbage[] = "this is not a DACR frame at all............";
    (void)::send(fd, garbage, sizeof(garbage), 0);
    ::close(fd);
  });
  Result<std::unique_ptr<Transport>> server = listener.value()->Accept();
  ASSERT_TRUE(server.ok());
  Result<std::string> r = server.value()->Recv();
  writer.join();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

}  // namespace
}  // namespace datacron
