#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

#include "cep/cpa.h"
#include "cep/detectors.h"
#include "cep/event.h"
#include "cep/hotspot.h"
#include "cep/pattern.h"
#include "sources/ais_generator.h"
#include "stream/pipeline.h"

namespace datacron {
namespace {

PositionReport Moving(EntityId id, TimestampMs t, double lat, double lon,
                      double speed, double course) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = {lat, lon, 0};
  r.speed_mps = speed;
  r.course_deg = course;
  return r;
}

int CountKind(const std::vector<Event>& events, EventKind kind) {
  int n = 0;
  for (const Event& e : events) {
    if (e.kind == kind) ++n;
  }
  return n;
}

// ------------------------------------------------------------- CPA

TEST(CpaTest, HeadOnCollisionCourse) {
  // Two vessels 10 km apart closing head-on at 5 m/s each.
  const auto a = Moving(1, 0, 36.5, 24.0, 5, 90);   // eastbound
  const auto b = Moving(2, 0, 36.5, 24.1118, 5, 270);  // ~10 km east, westbound
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_NEAR(cpa.d_now_m, 10000, 150);
  EXPECT_NEAR(cpa.t_cpa_s, 1000, 30);  // closing at 10 m/s
  EXPECT_LT(cpa.d_cpa_m, 200);
}

TEST(CpaTest, ParallelCoursesKeepSeparation) {
  const auto a = Moving(1, 0, 36.5, 24.0, 8, 90);
  const auto b = Moving(2, 0, 36.52, 24.0, 8, 90);  // ~2.2 km north
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_NEAR(cpa.d_cpa_m, cpa.d_now_m, 20);
}

TEST(CpaTest, DivergingClampsToNow) {
  const auto a = Moving(1, 0, 36.5, 24.0, 8, 270);
  const auto b = Moving(2, 0, 36.5, 24.05, 8, 90);
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_DOUBLE_EQ(cpa.t_cpa_s, 0.0);
  EXPECT_NEAR(cpa.d_cpa_m, cpa.d_now_m, 1.0);
}

TEST(CpaTest, DifferentTimestampsAligned) {
  // b reported 60 s earlier; it moves 300 m east in the alignment.
  const auto a = Moving(1, 60000, 36.5, 24.0, 0, 0);
  const auto b = Moving(2, 0, 36.5, 24.01, 5, 90);
  const CpaResult cpa = ComputeCpa(a, b);
  const double expected_now =
      EquirectangularMeters({36.5, 24.0}, {36.5, 24.01}) + 300;
  EXPECT_NEAR(cpa.d_now_m, expected_now, 40);
}

TEST(CpaTest, CrossingTracksAnalytic) {
  // Perpendicular crossing: a northbound, b westbound aimed to cross
  // a's path ahead of it.
  const auto a = Moving(1, 0, 36.0, 24.0, 10, 0);
  const auto b = Moving(2, 0, 36.05, 24.07, 10, 270);
  const CpaResult cpa = ComputeCpa(a, b);
  EXPECT_GT(cpa.t_cpa_s, 0);
  EXPECT_LT(cpa.d_cpa_m, cpa.d_now_m);
}

// ------------------------------------------------------------- proximity

ProximityDetector::Config ProxConfig() {
  ProximityDetector::Config cfg;
  cfg.encounter_m = 2000;
  cfg.danger_cpa_m = 500;
  cfg.cpa_lookahead = 30 * kMinute;
  return cfg;
}

TEST(ProximityDetectorTest, EmitsEncounterWhenClose) {
  ProximityDetector det(ProxConfig());
  std::vector<Event> events;
  det.ProcessCounted(Moving(1, 0, 36.5, 24.0, 5, 90), &events);
  det.ProcessCounted(Moving(2, 1000, 36.505, 24.0, 5, 90), &events);
  EXPECT_EQ(CountKind(events, EventKind::kEncounter), 1);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events[0].entities.size(), 2u);
}

TEST(ProximityDetectorTest, NoEncounterWhenFar) {
  ProximityDetector det(ProxConfig());
  std::vector<Event> events;
  det.ProcessCounted(Moving(1, 0, 36.5, 24.0, 5, 90), &events);
  det.ProcessCounted(Moving(2, 1000, 37.5, 26.0, 5, 90), &events);
  EXPECT_TRUE(events.empty());
}

TEST(ProximityDetectorTest, CollisionForecastOnConvergingCourses) {
  ProximityDetector det(ProxConfig());
  std::vector<Event> events;
  det.ProcessCounted(Moving(1, 0, 36.5, 24.0, 6, 90), &events);
  // 8 km east, heading west: head-on, CPA ~0 within ~11 min.
  det.ProcessCounted(Moving(2, 1000, 36.5, 24.09, 6, 270), &events);
  EXPECT_EQ(CountKind(events, EventKind::kCollisionForecast), 1);
  for (const Event& e : events) {
    if (e.kind == EventKind::kCollisionForecast) {
      EXPECT_GT(e.LeadTime(), 5 * kMinute);
      EXPECT_LT(e.LeadTime(), 20 * kMinute);
      EXPECT_LT(e.attributes.at("cpa_m"), 500);
    }
  }
}

TEST(ProximityDetectorTest, RealarmSuppressed) {
  ProximityDetector det(ProxConfig());
  std::vector<Event> events;
  for (int i = 0; i < 10; ++i) {
    det.ProcessCounted(Moving(1, i * 10000, 36.5, 24.0, 0.1, 90), &events);
    det.ProcessCounted(Moving(2, i * 10000 + 1, 36.505, 24.0, 0.1, 90),
                       &events);
  }
  // 100 s of continuous proximity with 5-minute realarm: one alarm only.
  EXPECT_EQ(CountKind(events, EventKind::kEncounter), 1);
}

TEST(ProximityDetectorTest, StaleReportsIgnored) {
  ProximityDetector det(ProxConfig());
  std::vector<Event> events;
  det.ProcessCounted(Moving(1, 0, 36.5, 24.0, 5, 90), &events);
  // Partner arrives 10 minutes later at the same spot; the stored state
  // of entity 1 is stale by then.
  det.ProcessCounted(Moving(2, 10 * kMinute, 36.505, 24.0, 5, 90), &events);
  EXPECT_TRUE(events.empty());
}

TEST(ProximityDetectorTest, DifferentDomainsDoNotConflict) {
  ProximityDetector det(ProxConfig());
  std::vector<Event> events;
  auto vessel = Moving(1, 0, 36.5, 24.0, 5, 90);
  auto plane = Moving(2, 1000, 36.5, 24.001, 200, 90);
  plane.domain = Domain::kAviation;
  plane.position.alt_m = 10000;
  det.ProcessCounted(vessel, &events);
  det.ProcessCounted(plane, &events);
  EXPECT_TRUE(events.empty());
}

// ------------------------------------------------------------- areas

TEST(AreaEventDetectorTest, EntryAndExit) {
  NamedArea area{"anchorage",
                 Polygon::Rectangle(BoundingBox::Of(36, 24, 36.2, 24.2))};
  AreaEventDetector det({area});
  std::vector<Event> events;
  det.ProcessCounted(Moving(1, 0, 35.9, 24.1, 5, 0), &events);
  det.ProcessCounted(Moving(1, 1000, 36.1, 24.1, 5, 0), &events);
  det.ProcessCounted(Moving(1, 2000, 36.15, 24.1, 5, 0), &events);
  det.ProcessCounted(Moving(1, 3000, 36.3, 24.1, 5, 0), &events);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, EventKind::kAreaEntry);
  EXPECT_EQ(events[0].label, "anchorage");
  EXPECT_EQ(events[1].kind, EventKind::kAreaExit);
}

// ------------------------------------------------------------- loitering

TEST(LoiteringDetectorTest, DetectsCirclingVessel) {
  LoiteringDetector::Config cfg;
  cfg.window = 10 * kMinute;
  cfg.radius_m = 800;
  LoiteringDetector det(cfg);
  std::vector<Event> events;
  // Vessel circles a point with ~300 m radius while "under way".
  const LatLon center{36.5, 24.5};
  for (int i = 0; i < 60; ++i) {
    const LatLon pos =
        DestinationPoint(center, (i * 30) % 360, 300);
    det.ProcessCounted(Moving(1, i * 20 * kSecond, pos.lat_deg,
                              pos.lon_deg, 3.0, (i * 30) % 360),
                       &events);
  }
  EXPECT_GE(CountKind(events, EventKind::kLoitering), 1);
}

TEST(LoiteringDetectorTest, TransitingVesselNotLoitering) {
  LoiteringDetector::Config cfg;
  cfg.window = 10 * kMinute;
  cfg.radius_m = 800;
  LoiteringDetector det(cfg);
  std::vector<Event> events;
  GeoPoint pos{36.5, 24.5, 0};
  for (int i = 0; i < 60; ++i) {
    det.ProcessCounted(
        Moving(1, i * 20 * kSecond, pos.lat_deg, pos.lon_deg, 6.0, 90),
        &events);
    pos = DeadReckon(pos, 90, 6.0, 0, 20);
  }
  EXPECT_EQ(CountKind(events, EventKind::kLoitering), 0);
}

TEST(LoiteringDetectorTest, AnchoredVesselNotLoitering) {
  LoiteringDetector::Config cfg;
  cfg.window = 10 * kMinute;
  LoiteringDetector det(cfg);
  std::vector<Event> events;
  for (int i = 0; i < 60; ++i) {
    det.ProcessCounted(
        Moving(1, i * 20 * kSecond, 36.5, 24.5, 0.05, 0), &events);
  }
  EXPECT_EQ(CountKind(events, EventKind::kLoitering), 0);
}

// ------------------------------------------------------------- capacity

TEST(CapacityMonitorTest, WarningAboveCapacity) {
  CapacityMonitor::Sector sector{
      "sector_a", Polygon::Rectangle(BoundingBox::Of(36, 24, 37, 25)), 2};
  CapacityMonitor::Config cfg;
  CapacityMonitor mon({sector}, cfg);
  std::vector<Event> events;
  mon.ProcessCounted(Moving(1, 0, 36.5, 24.5, 5, 0), &events);
  mon.ProcessCounted(Moving(2, 1000, 36.6, 24.5, 5, 0), &events);
  EXPECT_EQ(CountKind(events, EventKind::kCapacityWarning), 0);
  mon.ProcessCounted(Moving(3, 2000, 36.4, 24.6, 5, 0), &events);
  EXPECT_EQ(CountKind(events, EventKind::kCapacityWarning), 1);
  for (const Event& e : events) {
    if (e.kind == EventKind::kCapacityWarning) {
      EXPECT_EQ(e.attributes.at("occupancy"), 3);
      EXPECT_EQ(e.label, "sector_a");
    }
  }
}

TEST(CapacityMonitorTest, ForecastBeforeArrival) {
  CapacityMonitor::Sector sector{
      "sector_b", Polygon::Rectangle(BoundingBox::Of(36, 24, 37, 25)), 1};
  CapacityMonitor::Config cfg;
  cfg.forecast_horizon = 10 * kMinute;
  CapacityMonitor mon({sector}, cfg);
  std::vector<Event> events;
  // Two vessels outside the sector, both heading into it: predicted
  // occupancy 2 > capacity 1, actual occupancy 0.
  mon.ProcessCounted(Moving(1, 0, 36.5, 23.97, 10, 90), &events);
  mon.ProcessCounted(Moving(2, 1000, 36.4, 23.96, 10, 90), &events);
  EXPECT_EQ(CountKind(events, EventKind::kCapacityWarning), 0);
  EXPECT_EQ(CountKind(events, EventKind::kCapacityForecast), 1);
  for (const Event& e : events) {
    if (e.kind == EventKind::kCapacityForecast) {
      EXPECT_EQ(e.LeadTime(), 10 * kMinute);
    }
  }
}

// ------------------------------------------------------------- hotspots

TEST(HotspotAnalyzerTest, DenseCellDetected) {
  HotspotAnalyzer::Config cfg;
  cfg.cell_deg = 0.1;
  cfg.zscore_threshold = 2.0;
  HotspotAnalyzer analyzer(cfg);
  std::vector<PositionReport> reports;
  // Background: 40 entities spread out; hotspot: 25 entities in one cell.
  Rng rng(55);
  for (EntityId id = 0; id < 40; ++id) {
    reports.push_back(Moving(id, 0, rng.Uniform(35, 39),
                             rng.Uniform(23, 27), 5, 0));
  }
  for (EntityId id = 100; id < 125; ++id) {
    reports.push_back(Moving(id, 0, 36.55 + rng.Uniform(-0.02, 0.02),
                             24.55 + rng.Uniform(-0.02, 0.02), 5, 0));
  }
  const auto hotspots = analyzer.Detect(reports);
  ASSERT_FALSE(hotspots.empty());
  // The top hotspot is the packed cell.
  EXPECT_NEAR(hotspots[0].center.lat_deg, 36.55, 0.15);
  EXPECT_NEAR(hotspots[0].center.lon_deg, 24.55, 0.15);
}

TEST(HotspotAnalyzerTest, UniformTrafficHasNoHotspots) {
  HotspotAnalyzer::Config cfg;
  cfg.cell_deg = 0.5;
  HotspotAnalyzer analyzer(cfg);
  std::vector<PositionReport> reports;
  // One entity per cell: perfectly uniform.
  EntityId id = 0;
  for (double lat = 35.25; lat < 39; lat += 0.5) {
    for (double lon = 23.25; lon < 27; lon += 0.5) {
      reports.push_back(Moving(id++, 0, lat, lon, 5, 0));
    }
  }
  EXPECT_TRUE(analyzer.Detect(reports).empty());
}

TEST(HotspotAnalyzerTest, DistinctEntitiesNotReports) {
  HotspotAnalyzer::Config cfg;
  cfg.cell_deg = 0.2;
  cfg.distinct_entities = true;
  HotspotAnalyzer analyzer(cfg);
  std::vector<PositionReport> reports;
  // One anchored vessel reporting 500 times must NOT become a hotspot.
  for (int i = 0; i < 500; ++i) {
    reports.push_back(Moving(1, i * 1000, 36.5, 24.5, 0, 0));
  }
  Rng rng(77);
  for (EntityId id = 10; id < 40; ++id) {
    reports.push_back(Moving(id, 0, rng.Uniform(35, 39),
                             rng.Uniform(23, 27), 5, 0));
  }
  for (const auto& h : analyzer.Detect(reports)) {
    EXPECT_GT(
        EquirectangularMeters(h.center, {36.5, 24.5}), 1000)
        << "anchored spammer became a hotspot";
  }
}

TEST(HotspotDetectorTest, StreamingWindowsEmitHotspotEvents) {
  HotspotAnalyzer::Config cfg;
  cfg.cell_deg = 0.1;
  cfg.zscore_threshold = 2.0;
  HotspotDetector det(cfg, 10 * kMinute);
  std::vector<PositionReport> input;
  Rng rng(88);
  // Two windows of traffic with a persistent dense cluster.
  for (int w = 0; w < 2; ++w) {
    const TimestampMs base = w * 10 * kMinute;
    for (EntityId id = 0; id < 30; ++id) {
      input.push_back(Moving(id, base + id * 100, rng.Uniform(35, 39),
                             rng.Uniform(23, 27), 5, 0));
    }
    for (EntityId id = 100; id < 120; ++id) {
      input.push_back(Moving(id, base + id * 50,
                             36.5 + rng.Uniform(-0.02, 0.02),
                             24.5 + rng.Uniform(-0.02, 0.02), 5, 0));
    }
  }
  std::sort(input.begin(), input.end(), ReportTimeOrder());
  const auto events = pipeline::RunBatch(&det, input);
  EXPECT_GE(CountKind(events, EventKind::kHotspot), 1);
}

// ------------------------------------------------------------- pattern

Event SimpleEvent(EventKind kind, EntityId id, TimestampMs t) {
  Event e;
  e.kind = kind;
  e.time = t;
  e.predicted_time = t;
  e.entities = {id};
  return e;
}

TEST(PatternMatcherTest, SequenceMatches) {
  Pattern p;
  p.name = "entry_then_loiter";
  p.steps = {Pattern::OnKind(EventKind::kAreaEntry),
             Pattern::OnKind(EventKind::kLoitering)};
  p.within = kHour;
  PatternMatcher matcher(p);
  std::vector<Event> out;
  matcher.ProcessCounted(SimpleEvent(EventKind::kAreaEntry, 1, 0), &out);
  matcher.ProcessCounted(SimpleEvent(EventKind::kLoitering, 1, 10 * kMinute),
                         &out);
  ASSERT_EQ(CountKind(out, EventKind::kComposite), 1);
  EXPECT_EQ(out.back().label, "entry_then_loiter");
}

TEST(PatternMatcherTest, WindowExpires) {
  Pattern p;
  p.name = "quick_sequence";
  p.steps = {Pattern::OnKind(EventKind::kAreaEntry),
             Pattern::OnKind(EventKind::kLoitering)};
  p.within = 5 * kMinute;
  PatternMatcher matcher(p);
  std::vector<Event> out;
  matcher.ProcessCounted(SimpleEvent(EventKind::kAreaEntry, 1, 0), &out);
  matcher.ProcessCounted(
      SimpleEvent(EventKind::kLoitering, 1, 20 * kMinute), &out);
  EXPECT_EQ(CountKind(out, EventKind::kComposite), 0);
}

TEST(PatternMatcherTest, KeyedPerEntity) {
  Pattern p;
  p.name = "seq";
  p.steps = {Pattern::OnKind(EventKind::kAreaEntry),
             Pattern::OnKind(EventKind::kLoitering)};
  PatternMatcher matcher(p);
  std::vector<Event> out;
  matcher.ProcessCounted(SimpleEvent(EventKind::kAreaEntry, 1, 0), &out);
  // Different entity loiters: no match for entity 1.
  matcher.ProcessCounted(SimpleEvent(EventKind::kLoitering, 2, 1000), &out);
  EXPECT_EQ(CountKind(out, EventKind::kComposite), 0);
  matcher.ProcessCounted(SimpleEvent(EventKind::kLoitering, 1, 2000), &out);
  EXPECT_EQ(CountKind(out, EventKind::kComposite), 1);
}

TEST(PatternMatcherTest, NegationKillsRun) {
  // Entry, then NOT exit, then loitering: vessel that loiters while
  // still inside.
  Pattern p;
  p.name = "loiter_inside";
  p.steps = {Pattern::OnKind(EventKind::kAreaEntry),
             Pattern::NotKind(EventKind::kAreaExit),
             Pattern::OnKind(EventKind::kLoitering)};
  PatternMatcher matcher(p);
  std::vector<Event> out;
  matcher.ProcessCounted(SimpleEvent(EventKind::kAreaEntry, 1, 0), &out);
  matcher.ProcessCounted(SimpleEvent(EventKind::kAreaExit, 1, 1000), &out);
  matcher.ProcessCounted(SimpleEvent(EventKind::kLoitering, 1, 2000), &out);
  EXPECT_EQ(CountKind(out, EventKind::kComposite), 0);

  // Without the exit, the pattern fires.
  matcher.ProcessCounted(SimpleEvent(EventKind::kAreaEntry, 2, 0), &out);
  matcher.ProcessCounted(SimpleEvent(EventKind::kLoitering, 2, 2000), &out);
  EXPECT_EQ(CountKind(out, EventKind::kComposite), 1);
}

TEST(PatternMatcherTest, SingleStepPatternFiresImmediately) {
  Pattern p;
  p.name = "any_gap";
  p.steps = {Pattern::OnKind(EventKind::kGap)};
  PatternMatcher matcher(p);
  std::vector<Event> out;
  matcher.ProcessCounted(SimpleEvent(EventKind::kGap, 1, 0), &out);
  EXPECT_EQ(CountKind(out, EventKind::kComposite), 1);
}

// ------------------------------------------------------------- events

TEST(EventTest, NamesAndForecastKinds) {
  for (int i = 0; i <= static_cast<int>(EventKind::kComposite); ++i) {
    EXPECT_STRNE(EventKindName(static_cast<EventKind>(i)), "?");
  }
  EXPECT_TRUE(IsForecastKind(EventKind::kCollisionForecast));
  EXPECT_FALSE(IsForecastKind(EventKind::kEncounter));
}

TEST(EventTest, ToStringContainsKindAndLead) {
  Event e;
  e.kind = EventKind::kCollisionForecast;
  e.time = 1000;
  e.predicted_time = 61000;
  e.entities = {1, 2};
  const std::string s = e.ToString();
  EXPECT_NE(s.find("collision_forecast"), std::string::npos);
  EXPECT_NE(s.find("lead=60s"), std::string::npos);
}

// ----------------------------------------------------- integration

TEST(CepIntegrationTest, FleetStreamProducesEvents) {
  // Congested waters: 30 vessels packed into ~50x45 km so that
  // encounters are statistically certain within the window.
  AisGeneratorConfig fleet;
  fleet.num_vessels = 30;
  fleet.duration = 40 * kMinute;
  fleet.region = BoundingBox::Of(36.0, 24.0, 36.5, 24.5);
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto reports = ObserveFleet(traces, obs);
  auto cfg = ProxConfig();
  cfg.region = fleet.region;
  cfg.blocking_cell_deg = 0.05;
  ProximityDetector det(cfg);
  const auto events = pipeline::RunBatch(&det, reports);
  // 30 vessels in 4x4 degrees for 40 minutes: encounters are expected.
  EXPECT_GT(events.size(), 0u);
  for (const Event& e : events) {
    EXPECT_TRUE(e.kind == EventKind::kEncounter ||
                e.kind == EventKind::kCollisionForecast);
    EXPECT_EQ(e.entities.size(), 2u);
  }
}

}  // namespace
}  // namespace datacron
