// Parallel ingest path: determinism and equivalence with the serial path.
//
// The guarantee under test (see DESIGN.md "Parallel ingest architecture"):
// for any thread count, parallel RDF-ization, parsing, sealing and
// partition loading produce the same dictionary ids, the same triple sets
// and byte-identical sealed indexes as the serial path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/parallel_sort.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "rdf/ntriples.h"
#include "rdf/rdfizer.h"
#include "rdf/streaming_store.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

std::vector<PositionReport> FleetReports(std::size_t vessels,
                                         DurationMs duration) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = vessels;
  fleet.duration = duration;
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  return ObserveFleet(GenerateAisFleet(fleet), obs);
}

void ExpectSameDictionary(const TermDictionary& a, const TermDictionary& b) {
  ASSERT_EQ(a.size(), b.size());
  for (TermId id = 1; id <= a.size(); ++id) {
    const auto ta = a.Text(id);
    const auto tb = b.Text(id);
    ASSERT_TRUE(ta.ok());
    ASSERT_TRUE(tb.ok());
    ASSERT_EQ(ta.value(), tb.value()) << "id " << id;
    ASSERT_EQ(a.Kind(id), b.Kind(id)) << "id " << id;
  }
}

std::vector<Triple> SortedCopy(std::vector<Triple> v) {
  std::sort(v.begin(), v.end(), [](const Triple& a, const Triple& b) {
    if (a.s != b.s) return a.s < b.s;
    if (a.p != b.p) return a.p < b.p;
    return a.o < b.o;
  });
  return v;
}

// ------------------------------------------------------- term dictionary

TEST(ShardedDictionaryTest, ConcurrentInternIsConsistent) {
  TermDictionary dict;
  ThreadPool pool(8);
  // 8 workers intern heavily overlapping term sets concurrently.
  pool.ParallelFor(8, [&](std::size_t w) {
    for (int rep = 0; rep < 3; ++rep) {
      for (int i = 0; i < 500; ++i) {
        dict.Intern(StrFormat("shared:%d", i));
        dict.Intern(StrFormat("w%zu:%d", w, i));
      }
    }
  });
  // 500 shared + 8*500 private distinct terms, each with exactly one id.
  EXPECT_EQ(dict.size(), 500u + 8u * 500u);
  for (int i = 0; i < 500; ++i) {
    const TermId id = dict.Find(StrFormat("shared:%d", i));
    ASSERT_NE(id, kInvalidTermId);
    EXPECT_EQ(dict.Intern(StrFormat("shared:%d", i)), id);
    EXPECT_EQ(dict.Text(id).value(), StrFormat("shared:%d", i));
  }
  // Ids are dense: every id in [1, size] resolves.
  for (TermId id = 1; id <= dict.size(); ++id) {
    EXPECT_TRUE(dict.Text(id).ok());
  }
}

TEST(ShardedDictionaryTest, SerialIdsStayDense) {
  TermDictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern(StrFormat("x:%d", i)), static_cast<TermId>(i + 1));
  }
}

TEST(TermBatchTest, MergeReproducesSerialOrder) {
  // Serial reference.
  TermDictionary serial;
  const std::vector<std::string> stream = {"a", "b", "a", "c", "d", "b", "e"};
  for (const auto& s : stream) serial.Intern(s);

  // Two-phase over two chunks: {a,b,a,c} then {d,b,e}.
  TermDictionary merged;
  TermBatch chunk1(&merged);
  for (const char* s : {"a", "b", "a", "c"}) chunk1.Intern(s);
  TermBatch chunk2(&merged);
  for (const char* s : {"d", "b", "e"}) chunk2.Intern(s);
  merged.MergeBatch(chunk1);
  merged.MergeBatch(chunk2);
  ExpectSameDictionary(serial, merged);
}

TEST(TermBatchTest, LocalIdsRemapToGlobal) {
  TermDictionary dict;
  const TermId pre = dict.Intern("already-global");
  TermBatch batch(&dict);
  EXPECT_EQ(batch.Intern("already-global"), pre);  // global hit, unmarked
  const TermId local = batch.Intern("fresh");
  EXPECT_TRUE(local & kLocalTermBit);
  EXPECT_EQ(batch.Intern("fresh"), local);  // local hit
  const auto remap = dict.MergeBatch(batch);
  EXPECT_EQ(RemapTerm(local, remap), dict.Find("fresh"));
  EXPECT_EQ(RemapTerm(pre, remap), pre);
}

// ----------------------------------------------------- batch RDF-ization

class TransformBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(TransformBatchTest, MatchesSerialAcrossThreadCounts) {
  const auto reports = FleetReports(20, 30 * kMinute);
  ASSERT_GE(reports.size(), 512u) << "need a real batch";

  // Serial reference.
  TermDictionary serial_dict;
  Vocab serial_vocab(&serial_dict);
  Rdfizer serial(Rdfizer::Config{}, &serial_dict, &serial_vocab);
  std::vector<Triple> serial_triples;
  for (const auto& r : reports) {
    const auto ts = serial.TransformReport(r);
    serial_triples.insert(serial_triples.end(), ts.begin(), ts.end());
  }

  // Parallel.
  ThreadPool pool(GetParam());
  TermDictionary par_dict;
  Vocab par_vocab(&par_dict);
  Rdfizer parallel(Rdfizer::Config{}, &par_dict, &par_vocab);
  const auto par_triples = parallel.TransformBatch(reports, &pool);

  // Same dictionary: identical ids for identical texts.
  ExpectSameDictionary(serial_dict, par_dict);
  // Same triple multiset (order may differ at chunk boundaries only).
  EXPECT_EQ(SortedCopy(serial_triples), SortedCopy(par_triples));
  // Same side tables.
  EXPECT_EQ(serial.tags(), parallel.tags());
  EXPECT_EQ(serial.node_geo(), parallel.node_geo());

  // Identical sealed indexes.
  TripleStore a;
  a.AddBatch(serial_triples);
  a.Seal();
  TripleStore b;
  b.AddBatch(par_triples);
  b.Seal();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.Match({0, 0, 0}), b.Match({0, 0, 0}));
  EXPECT_EQ(a.Predicates(), b.Predicates());
}

INSTANTIATE_TEST_SUITE_P(Threads, TransformBatchTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(TransformBatchTest, CrossBatchSequenceLinksStitch) {
  const auto reports = FleetReports(8, 30 * kMinute);
  ASSERT_GE(reports.size(), 512u);

  TermDictionary serial_dict;
  Vocab serial_vocab(&serial_dict);
  Rdfizer serial(Rdfizer::Config{}, &serial_dict, &serial_vocab);
  std::vector<Triple> serial_triples;
  for (const auto& r : reports) {
    const auto ts = serial.TransformReport(r);
    serial_triples.insert(serial_triples.end(), ts.begin(), ts.end());
  }

  // Two successive parallel batches over the two halves: entity typing
  // must not re-emit and links must chain across the batch boundary.
  ThreadPool pool(4);
  TermDictionary par_dict;
  Vocab par_vocab(&par_dict);
  Rdfizer parallel(Rdfizer::Config{}, &par_dict, &par_vocab);
  const std::size_t half = reports.size() / 2;
  std::vector<PositionReport> first(reports.begin(), reports.begin() + half);
  std::vector<PositionReport> second(reports.begin() + half, reports.end());
  auto par_triples = parallel.TransformBatch(first, &pool);
  const auto more = parallel.TransformBatch(second, &pool);
  par_triples.insert(par_triples.end(), more.begin(), more.end());

  ExpectSameDictionary(serial_dict, par_dict);
  EXPECT_EQ(SortedCopy(serial_triples), SortedCopy(par_triples));
  EXPECT_EQ(serial.tags(), parallel.tags());
}

TEST(TransformBatchTest, NullPoolFallsBackToSerial) {
  const auto reports = FleetReports(4, 10 * kMinute);
  TermDictionary d1;
  Vocab v1(&d1);
  Rdfizer r1(Rdfizer::Config{}, &d1, &v1);
  std::vector<Triple> expect;
  for (const auto& r : reports) {
    const auto ts = r1.TransformReport(r);
    expect.insert(expect.end(), ts.begin(), ts.end());
  }
  TermDictionary d2;
  Vocab v2(&d2);
  Rdfizer r2(Rdfizer::Config{}, &d2, &v2);
  EXPECT_EQ(r2.TransformBatch(reports, nullptr), expect);
}

// ----------------------------------------------------------- seal / sort

TEST(ParallelSealTest, IdenticalToSerialSeal) {
  Rng rng(4242);
  std::vector<Triple> triples;
  triples.reserve(120000);
  for (int i = 0; i < 120000; ++i) {
    triples.push_back({static_cast<TermId>(rng.UniformInt(1, 5000)),
                       static_cast<TermId>(rng.UniformInt(5001, 5050)),
                       static_cast<TermId>(rng.UniformInt(1, 9000))});
  }
  TripleStore serial;
  serial.AddBatch(triples);
  serial.Seal();

  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    TripleStore parallel;
    parallel.AddBatch(triples);
    parallel.Seal(&pool);
    ASSERT_EQ(serial.size(), parallel.size()) << threads << " threads";
    EXPECT_EQ(serial.Match({0, 0, 0}), parallel.Match({0, 0, 0}));
    EXPECT_EQ(serial.Predicates(), parallel.Predicates());
    // Spot-check every pattern family against the serial store.
    for (int q = 0; q < 25; ++q) {
      TriplePattern pat;
      Rng qr(q);
      if (qr.Bernoulli(0.5)) {
        pat.s = static_cast<TermId>(qr.UniformInt(1, 5000));
      }
      if (qr.Bernoulli(0.5)) {
        pat.p = static_cast<TermId>(qr.UniformInt(5001, 5050));
      }
      if (qr.Bernoulli(0.5)) {
        pat.o = static_cast<TermId>(qr.UniformInt(1, 9000));
      }
      EXPECT_EQ(serial.Match(pat), parallel.Match(pat));
      EXPECT_EQ(serial.Count(pat), parallel.Count(pat));
    }
  }
}

TEST(ParallelSortTest, SortsLikeStdSort) {
  Rng rng(99);
  std::vector<int> v(100000);
  for (auto& x : v) x = static_cast<int>(rng.UniformInt(0, 1 << 20));
  std::vector<int> expect = v;
  std::sort(expect.begin(), expect.end());
  ThreadPool pool(4);
  ParallelSort(&v, std::less<int>(), &pool);
  EXPECT_EQ(v, expect);
}

TEST(ParallelSortTest, TinyInputFallsBack) {
  ThreadPool pool(4);
  std::vector<int> v = {5, 3, 1, 4, 2};
  ParallelSort(&v, std::less<int>(), &pool);
  EXPECT_EQ(v, (std::vector<int>{1, 2, 3, 4, 5}));
}

// -------------------------------------------------------------- ntriples

TEST(ParallelParseTest, IdenticalToSerialParse) {
  // Build a document big enough to engage the parallel path (>64 KiB).
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  std::vector<Triple> triples;
  for (const auto& r : FleetReports(10, 30 * kMinute)) {
    const auto ts = rdfizer.TransformReport(r);
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  const std::string doc = SerializeNTriples(triples, dict);
  ASSERT_GT(doc.size(), (1u << 16)) << "document too small to test sharding";

  TermDictionary serial_dict;
  std::vector<Triple> serial_out;
  ASSERT_TRUE(ParseNTriples(doc, &serial_dict, &serial_out).ok());

  for (int threads : {2, 4, 8}) {
    ThreadPool pool(threads);
    TermDictionary par_dict;
    std::vector<Triple> par_out;
    ASSERT_TRUE(ParseNTriples(doc, &par_dict, &par_out, &pool).ok());
    ExpectSameDictionary(serial_dict, par_dict);
    EXPECT_EQ(serial_out, par_out);
  }
}

TEST(ParallelParseTest, ReportsSameErrorLineAsSerial) {
  // 20k good lines with one corrupted in the middle.
  std::string doc;
  const std::size_t bad_line = 12345;
  for (std::size_t i = 1; i <= 20000; ++i) {
    if (i == bad_line) {
      doc += "<a> <b> garbage\n";
    } else {
      doc += StrFormat("<s%zu> <p> <o> .\n", i);
    }
  }
  TermDictionary serial_dict;
  std::vector<Triple> serial_out;
  const Status serial_status = ParseNTriples(doc, &serial_dict, &serial_out);
  ASSERT_FALSE(serial_status.ok());

  ThreadPool pool(4);
  TermDictionary par_dict;
  std::vector<Triple> par_out;
  const Status par_status = ParseNTriples(doc, &par_dict, &par_out, &pool);
  ASSERT_FALSE(par_status.ok());
  EXPECT_EQ(serial_status.message(), par_status.message());
  EXPECT_NE(par_status.message().find("12345"), std::string::npos);
}

// ------------------------------------------------------- streaming store

TEST(ParallelStreamingStoreTest, MatchesSerialStore) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  std::vector<Triple> triples;
  std::vector<TimestampMs> stamps;
  for (const auto& r : FleetReports(10, kHour)) {
    const auto ts = rdfizer.TransformReport(r);
    for (const auto& t : ts) {
      triples.push_back(t);
      stamps.push_back(r.timestamp);
    }
  }

  StreamingRdfStore::Config cfg;
  cfg.bucket_ms = 5 * kMinute;
  cfg.retention_buckets = 1 << 20;
  ThreadPool pool(4);
  StreamingRdfStore serial(cfg);
  StreamingRdfStore parallel(cfg, &pool);
  for (std::size_t i = 0; i < triples.size(); i += 500) {
    const std::size_t end = std::min(triples.size(), i + 500);
    const std::vector<Triple> batch(triples.begin() + i, triples.begin() + end);
    serial.Add(stamps[i], batch);
    parallel.Add(stamps[i], batch);
    serial.AdvanceTo(stamps[end - 1]);
    parallel.AdvanceTo(stamps[end - 1]);
  }
  EXPECT_EQ(serial.SealedBuckets(), parallel.SealedBuckets());
  EXPECT_EQ(serial.LiveTriples(), parallel.LiveTriples());
  EXPECT_EQ(SortedCopy(serial.Match({0, 0, 0})),
            SortedCopy(parallel.Match({0, 0, 0})));
  const TripleStore snap_serial = serial.Snapshot();
  const TripleStore snap_parallel = parallel.Snapshot();
  EXPECT_EQ(snap_serial.Match({0, 0, 0}), snap_parallel.Match({0, 0, 0}));
}

// ------------------------------------------------------ partitioned load

TEST(ParallelPartitionLoadTest, MatchesSerialLoad) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  std::vector<Triple> triples;
  for (const auto& r : FleetReports(20, kHour)) {
    const auto ts = rdfizer.TransformReport(r);
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  ASSERT_GE(triples.size(), 4096u);

  HashPartitioner scheme(8, &rdfizer.tags());
  PartitionedRdfStore serial;
  serial.Load(triples, scheme, rdfizer.grid(), vocab.p_next_node);
  ThreadPool pool(4);
  PartitionedRdfStore parallel;
  parallel.Load(triples, scheme, rdfizer.grid(), vocab.p_next_node, &pool);

  EXPECT_EQ(serial.stats().ToString(), parallel.stats().ToString());
  ASSERT_EQ(serial.num_partitions(), parallel.num_partitions());
  for (int p = 0; p < serial.num_partitions(); ++p) {
    EXPECT_EQ(serial.partition(p).size(), parallel.partition(p).size()) << p;
    EXPECT_EQ(serial.partition(p).Match({0, 0, 0}),
              parallel.partition(p).Match({0, 0, 0}))
        << p;
    EXPECT_EQ(serial.meta(p).triple_count, parallel.meta(p).triple_count);
    EXPECT_EQ(serial.meta(p).min_bucket, parallel.meta(p).min_bucket);
    EXPECT_EQ(serial.meta(p).max_bucket, parallel.meta(p).max_bucket);
  }
  EXPECT_EQ(serial.PruneCandidates(BoundingBox::Of(36, 24, 37, 25), 0, 10),
            parallel.PruneCandidates(BoundingBox::Of(36, 24, 37, 25), 0, 10));
}

// ---------------------------------------------------------- observation

TEST(ParallelObserveTest, FleetObservationMatchesSerial) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 12;
  fleet.duration = 30 * kMinute;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  const auto serial = ObserveFleet(traces, obs);
  ThreadPool pool(4);
  const auto parallel = ObserveFleet(traces, obs, &pool);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace datacron
