// The portable SIMD layer's core contract: every wrapper op produces
// bit-identical lanes on the native and scalar backends — including the
// NaN/signed-zero corners where vector instructions (MINPD, BLENDV,
// ordered compares) differ from naive C expressions — and the vector
// math functions agree with libm to the documented ulp bound.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "common/simd/math.h"
#include "common/simd/simd.h"

namespace datacron {
namespace {

using simd::kNativeWidth;
using DV = simd::Simd<double, simd::native_abi>;
using DS = simd::Simd<double, simd::scalar_abi>;

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// First lane of a native vector (works at any width, unlike raw()).
double Lane0(DV v) {
  double lanes[DV::kWidth];
  v.Store(lanes);
  return lanes[0];
}

/// Values that exercise the corner semantics.
std::vector<double> SpecialValues() {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  return {0.0,  -0.0, 1.0,    -1.0,  0.5,  -2.5, 1e300, -1e300,
          1e-308, inf, -inf, nan,   180.0, -180.0, 3.75, 1e16};
}

/// Runs a lane-parallel expression on both backends over the same input
/// columns and asserts bitwise equality per lane.
template <typename NativeFn, typename ScalarFn>
void ExpectLaneEqual(const std::vector<double>& a, const std::vector<double>& b,
                     const std::vector<double>& c, NativeFn&& nf,
                     ScalarFn&& sf, const char* what) {
  const std::size_t n = a.size();
  std::vector<double> out_native(n), out_scalar(n);
  for (std::size_t i = 0; i + kNativeWidth <= n; i += kNativeWidth) {
    nf(DV::Load(a.data() + i), DV::Load(b.data() + i), DV::Load(c.data() + i))
        .Store(out_native.data() + i);
  }
  const std::size_t tail = n - n % kNativeWidth;
  for (std::size_t i = tail; i < n; ++i) {
    nf(DV(a[i]), DV(b[i]), DV(c[i])).Store(out_native.data() + i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    sf(DS(a[i]), DS(b[i]), DS(c[i])).Store(out_scalar.data() + i);
  }
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(Bits(out_native[i]), Bits(out_scalar[i]))
        << what << " lane " << i << ": native=" << out_native[i]
        << " scalar=" << out_scalar[i] << " (a=" << a[i] << " b=" << b[i]
        << " c=" << c[i] << ")";
  }
}

TEST(SimdWrapperTest, ArithmeticLanesMatchScalarBackend) {
  Rng rng(42);
  std::vector<double> a, b, c;
  for (double s : SpecialValues()) {
    for (double t : SpecialValues()) {
      a.push_back(s);
      b.push_back(t);
      c.push_back(s + t);
    }
  }
  for (int i = 0; i < 512; ++i) {
    a.push_back(rng.Uniform(-1e6, 1e6));
    b.push_back(rng.Uniform(-1e6, 1e6));
    c.push_back(rng.Uniform(-1e6, 1e6));
  }
  auto ops = [](auto x, auto y, auto z) {
    return (x + y) * z - x / (y * y + decltype(x)(1.0));
  };
  ExpectLaneEqual(a, b, c, ops, ops, "arith");
  auto minmax = [](auto x, auto y, auto z) {
    return Min(x, y) + Max(y, z);
  };
  ExpectLaneEqual(a, b, c, minmax, minmax, "minmax");
  auto fma = [](auto x, auto y, auto z) { return Fma(x, y, z); };
  ExpectLaneEqual(a, b, c, fma, fma, "fma");
  auto sel = [](auto x, auto y, auto z) {
    return Select(x < y, Sqrt(Abs(z)), Floor(y));
  };
  ExpectLaneEqual(a, b, c, sel, sel, "select");
  auto sign = [](auto x, auto y, auto z) {
    return CopySign(x, y) + RoundNearest(z);
  };
  ExpectLaneEqual(a, b, c, sign, sign, "copysign");
}

TEST(SimdWrapperTest, MinMaxFollowVectorInstructionNaNRules) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // MINPD/MAXPD return the SECOND operand when any operand is NaN; that
  // is what makes Max(t, 0.0) a faithful spelling of std::max(0.0, t).
  EXPECT_EQ(Bits((Min(DS(nan), DS(3.0))).raw()), Bits(3.0));
  EXPECT_EQ(Bits((Max(DS(nan), DS(3.0))).raw()), Bits(3.0));
  EXPECT_TRUE(std::isnan(Min(DS(3.0), DS(nan)).raw()));
  EXPECT_TRUE(std::isnan(Max(DS(3.0), DS(nan)).raw()));
  EXPECT_EQ(Bits(Lane0(Min(DV(nan), DV(3.0)))), Bits(3.0));
  EXPECT_EQ(Bits(Lane0(Max(DV(nan), DV(3.0)))), Bits(3.0));
  // Ordered compares are false on NaN, so Select routes NaN lanes to the
  // if_false arm — mirroring how an `if (a < b)` scalar branch falls
  // through on NaN.
  EXPECT_EQ(Select(DS(nan) < DS(0.0), DS(1.0), DS(2.0)).raw(), 2.0);
  EXPECT_FALSE(Any(DS(nan) < DS(0.0)));
  EXPECT_FALSE(Any(DS(nan) >= DS(0.0)));
}

TEST(SimdWrapperTest, FmaIsFused) {
  // (1 + 2^-30)^2 = 1 + 2^-29 + 2^-60; the 2^-60 term survives only if
  // the multiply feeding the subtract is unrounded.
  const double x = 1.0 + std::ldexp(1.0, -30);
  const double fused = Fma(DS(x), DS(x), DS(-1.0)).raw();
  EXPECT_EQ(fused, std::fma(x, x, -1.0));
  EXPECT_NE(fused, x * x - 1.0);
  EXPECT_EQ(Bits(Lane0(Fma(DV(x), DV(x), DV(-1.0)))), Bits(fused));
}

TEST(SimdWrapperTest, MaskStoreBytesWritesZeroOne) {
  std::vector<double> a(kNativeWidth), b(kNativeWidth);
  for (int i = 0; i < kNativeWidth; ++i) {
    a[i] = i;
    b[i] = 1.5;
  }
  std::vector<std::uint8_t> out(kNativeWidth, 0xFF);
  (DV::Load(a.data()) < DV::Load(b.data())).StoreBytes(out.data());
  for (int i = 0; i < kNativeWidth; ++i) {
    EXPECT_EQ(out[i], i < 1.5 ? 1 : 0) << "lane " << i;
  }
}

// ------------------------------------------------------------ math.h

std::int64_t UlpDistance(double a, double b) {
  if (a == b) return 0;
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<std::int64_t>::max();
  if ((a < 0) != (b < 0)) return std::numeric_limits<std::int64_t>::max();
  const auto ia = static_cast<std::int64_t>(Bits(std::fabs(a)));
  const auto ib = static_cast<std::int64_t>(Bits(std::fabs(b)));
  return ia > ib ? ia - ib : ib - ia;
}

class SimdMathTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdMathTest, SinCosMatchesLibmWithinUlpBound) {
  Rng rng(7000 + GetParam());
  for (int i = 0; i < 200; ++i) {
    // The kernels only ever see radians from degree inputs scaled by
    // kDegToRad, but the documented domain is |x| <= 1e5.
    const double x = GetParam() % 2 == 0 ? rng.Uniform(-10.0, 10.0)
                                         : rng.Uniform(-1e5, 1e5);
    DS s, c;
    simd::SinCos<simd::scalar_abi>(DS(x), &s, &c);
    EXPECT_LE(UlpDistance(s.raw(), std::sin(x)), 4)
        << "sin(" << x << ") = " << s.raw() << " vs " << std::sin(x);
    EXPECT_LE(UlpDistance(c.raw(), std::cos(x)), 4)
        << "cos(" << x << ") = " << c.raw() << " vs " << std::cos(x);
    // Native lanes are bit-identical to the scalar backend.
    DV sv, cv;
    simd::SinCos<simd::native_abi>(DV(x), &sv, &cv);
    double lanes_s[DV::kWidth], lanes_c[DV::kWidth];
    sv.Store(lanes_s);
    cv.Store(lanes_c);
    for (int l = 0; l < DV::kWidth; ++l) {
      EXPECT_EQ(Bits(lanes_s[l]), Bits(s.raw()));
      EXPECT_EQ(Bits(lanes_c[l]), Bits(c.raw()));
    }
  }
}

TEST_P(SimdMathTest, AsinMatchesLibmWithinUlpBound) {
  Rng rng(7500 + GetParam());
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(-1.0, 1.0);
    if (i % 10 == 0) x = rng.Uniform(-1e-3, 1e-3);  // small-angle branch
    if (i % 17 == 0) x = i % 2 == 0 ? 1.0 : -1.0;   // endpoints
    const double got = simd::Asin<simd::scalar_abi>(DS(x)).raw();
    EXPECT_LE(UlpDistance(got, std::asin(x)), 4)
        << "asin(" << x << ") = " << got << " vs " << std::asin(x);
    const DV vec = simd::Asin<simd::native_abi>(DV(x));
    double lanes[DV::kWidth];
    vec.Store(lanes);
    for (int l = 0; l < DV::kWidth; ++l) {
      EXPECT_EQ(Bits(lanes[l]), Bits(got)) << "x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimdMathTest, ::testing::Range(0, 10));

TEST(SimdMathTest, NanPropagates) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  DS s, c;
  simd::SinCos<simd::scalar_abi>(DS(nan), &s, &c);
  EXPECT_TRUE(std::isnan(s.raw()));
  EXPECT_TRUE(std::isnan(c.raw()));
  EXPECT_TRUE(std::isnan(simd::Asin<simd::scalar_abi>(DS(nan)).raw()));
}

}  // namespace
}  // namespace datacron
