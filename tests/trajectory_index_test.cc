#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "sources/ais_generator.h"
#include "trajectory/trajectory_index.h"

namespace datacron {
namespace {

Trajectory Line(EntityId id, LatLon from, LatLon to, int points,
                TimestampMs t0 = 0, DurationMs dt = 60000) {
  Trajectory t;
  t.entity_id = id;
  for (int i = 0; i < points; ++i) {
    const double f = points > 1 ? static_cast<double>(i) / (points - 1) : 0;
    PositionReport r;
    r.entity_id = id;
    r.timestamp = t0 + i * dt;
    r.position = {from.lat_deg + f * (to.lat_deg - from.lat_deg),
                  from.lon_deg + f * (to.lon_deg - from.lon_deg), 0};
    t.points.push_back(r);
  }
  return t;
}

TEST(TrajectoryIndexTest, FindsCrossingEvenWithoutSampleInside) {
  // Sparse trajectory: samples at 24.0 and 25.0 lon only, crossing a tiny
  // box at ~24.5 between samples.
  TrajectoryIndex index;
  index.Build({Line(1, {36.5, 24.0}, {36.5, 25.0}, 2)});
  const BoundingBox tiny = BoundingBox::Of(36.45, 24.45, 36.55, 24.55);
  const auto hits = index.Query(tiny);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(TrajectoryIndexTest, MissesNonCrossing) {
  TrajectoryIndex index;
  index.Build({Line(1, {36.5, 24.0}, {36.5, 25.0}, 10)});
  EXPECT_TRUE(index.Query(BoundingBox::Of(37.0, 24.4, 37.2, 24.6)).empty());
}

TEST(TrajectoryIndexTest, DiagonalSegmentVsCorneredBox) {
  // A diagonal segment whose bbox overlaps the query box but whose
  // geometry does not — the exact test must reject it.
  TrajectoryIndex index;
  index.Build({Line(1, {36.0, 24.0}, {37.0, 25.0}, 2)});
  // Box in the upper-left corner of the segment's bbox, away from the
  // diagonal.
  const BoundingBox corner = BoundingBox::Of(36.8, 24.05, 36.95, 24.15);
  EXPECT_TRUE(index.Query(corner).empty());
  // Box on the diagonal matches.
  const BoundingBox on_diag = BoundingBox::Of(36.45, 24.45, 36.55, 24.55);
  EXPECT_EQ(index.Query(on_diag).size(), 1u);
}

TEST(TrajectoryIndexTest, TemporalFilter) {
  TrajectoryIndex index;
  index.Build({Line(1, {36.5, 24.0}, {36.5, 25.0}, 11, 0, 60000)});
  const BoundingBox east_half = BoundingBox::Of(36.4, 24.5, 36.6, 25.0);
  // The east half is traversed in the second half of the 10-minute run.
  EXPECT_EQ(index.Query(east_half, 0, 10 * kMinute).size(), 1u);
  EXPECT_TRUE(index.Query(east_half, 0, 2 * kMinute).empty());
  EXPECT_EQ(index.Query(east_half, 8 * kMinute, 10 * kMinute).size(), 1u);
}

TEST(TrajectoryIndexTest, DistinctEntities) {
  TrajectoryIndex index;
  index.Build({
      Line(1, {36.5, 24.0}, {36.5, 25.0}, 20),
      Line(2, {36.6, 24.0}, {36.6, 25.0}, 20),
      Line(3, {38.0, 26.0}, {38.5, 26.5}, 20),
  });
  auto hits = index.Query(BoundingBox::Of(36.4, 24.2, 36.7, 24.8));
  std::sort(hits.begin(), hits.end());
  EXPECT_EQ(hits, (std::vector<EntityId>{1, 2}));
}

TEST(TrajectoryIndexTest, NearestEntitiesDistinctAndOrdered) {
  TrajectoryIndex index;
  index.Build({
      Line(1, {36.50, 24.0}, {36.50, 25.0}, 30),
      Line(2, {36.60, 24.0}, {36.60, 25.0}, 30),
      Line(3, {36.90, 24.0}, {36.90, 25.0}, 30),
  });
  const auto nearest = index.NearestEntities({36.48, 24.5}, 2);
  ASSERT_EQ(nearest.size(), 2u);
  EXPECT_EQ(nearest[0], 1u);
  EXPECT_EQ(nearest[1], 2u);
}

TEST(TrajectoryIndexTest, EmptyIndex) {
  TrajectoryIndex index;
  index.Build({});
  EXPECT_TRUE(index.empty());
  EXPECT_TRUE(index.Query(BoundingBox::Of(0, 0, 1, 1)).empty());
  EXPECT_TRUE(index.NearestEntities({0, 0}, 3).empty());
}

TEST(TrajectoryIndexTest, MatchesBruteForceOnFleet) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 15;
  cfg.duration = 30 * kMinute;
  const auto traces = GenerateAisFleet(cfg);
  std::vector<Trajectory> trajs;
  for (const auto& tr : traces) {
    Trajectory t;
    t.entity_id = tr.entity_id;
    for (std::size_t i = 0; i < tr.samples.size(); i += 30) {
      t.points.push_back(tr.samples[i]);
    }
    trajs.push_back(std::move(t));
  }
  TrajectoryIndex index;
  index.Build(trajs);

  Rng rng(31);
  for (int q = 0; q < 20; ++q) {
    const double lat = rng.Uniform(35, 38.5);
    const double lon = rng.Uniform(23, 26.5);
    const BoundingBox box = BoundingBox::Of(lat, lon, lat + 0.3, lon + 0.3);
    auto got = index.Query(box);
    std::sort(got.begin(), got.end());
    // Brute force over all segments.
    std::vector<EntityId> expected;
    for (const auto& t : trajs) {
      bool crosses = false;
      for (std::size_t i = 1; i < t.points.size() && !crosses; ++i) {
        BoundingBox seg_box =
            BoundingBox::OfPoint(t.points[i - 1].position.ll());
        seg_box.Extend(t.points[i].position.ll());
        if (!box.Intersects(seg_box)) continue;
        // Sample the segment densely as the reference predicate.
        for (int s = 0; s <= 50; ++s) {
          const double f = s / 50.0;
          const LatLon p{
              t.points[i - 1].position.lat_deg +
                  f * (t.points[i].position.lat_deg -
                       t.points[i - 1].position.lat_deg),
              t.points[i - 1].position.lon_deg +
                  f * (t.points[i].position.lon_deg -
                       t.points[i - 1].position.lon_deg)};
          if (box.Contains(p)) {
            crosses = true;
            break;
          }
        }
      }
      if (crosses) expected.push_back(t.entity_id);
    }
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

}  // namespace
}  // namespace datacron
