#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "geo/grid.h"
#include "geo/rtree.h"

namespace datacron {
namespace {

const BoundingBox kRegion = BoundingBox::Of(35, 23, 39, 27);

// ------------------------------------------------------------ UniformGrid

TEST(UniformGridTest, Dimensions) {
  UniformGrid g(kRegion, 0.5);
  EXPECT_EQ(g.cols(), 8);
  EXPECT_EQ(g.rows(), 8);
  EXPECT_EQ(g.CellCount(), 64);
}

TEST(UniformGridTest, CellOfCorners) {
  UniformGrid g(kRegion, 0.5);
  EXPECT_EQ(g.CellOf({35.0, 23.0}), (GridCell{0, 0}));
  EXPECT_EQ(g.CellOf({38.99, 26.99}), (GridCell{7, 7}));
}

TEST(UniformGridTest, OutsideClampsToBorder) {
  UniformGrid g(kRegion, 0.5);
  EXPECT_EQ(g.CellOf({50.0, 25.0}).iy, 7);
  EXPECT_EQ(g.CellOf({20.0, 25.0}).iy, 0);
  EXPECT_EQ(g.CellOf({37.0, -10.0}).ix, 0);
}

TEST(UniformGridTest, CellBoundsContainCenter) {
  UniformGrid g(kRegion, 0.25);
  for (std::int64_t i = 0; i < g.CellCount(); i += 17) {
    const GridCell c = g.FromLinearIndex(i);
    EXPECT_TRUE(g.CellBounds(c).Contains(g.CellCenter(c)));
    EXPECT_EQ(g.LinearIndex(c), i);
  }
}

TEST(UniformGridTest, CellOfCenterIsSameCell) {
  UniformGrid g(kRegion, 0.25);
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const LatLon p{rng.Uniform(35, 39), rng.Uniform(23, 27)};
    const GridCell c = g.CellOf(p);
    EXPECT_EQ(g.CellOf(g.CellCenter(c)), c);
  }
}

TEST(UniformGridTest, NeighborsCountInteriorAndCorner) {
  UniformGrid g(kRegion, 0.5);
  EXPECT_EQ(g.Neighbors({3, 3}).size(), 8u);
  EXPECT_EQ(g.Neighbors({0, 0}).size(), 3u);
  EXPECT_EQ(g.Neighbors({0, 3}).size(), 5u);
}

TEST(UniformGridTest, CellsInBoxCoversQuery) {
  UniformGrid g(kRegion, 0.5);
  const auto cells = g.CellsInBox(BoundingBox::Of(36.1, 24.1, 36.9, 25.4));
  // lat 36.1..36.9 -> rows 2..3; lon 24.1..25.4 -> cols 2..4 => 2*3 cells.
  EXPECT_EQ(cells.size(), 6u);
}

TEST(UniformGridTest, KeyRoundTrip) {
  const GridCell c{-3, 1234};
  EXPECT_EQ(GridCell::FromKey(c.Key()), c);
}

// ------------------------------------------------------------ GridIndex

TEST(GridIndexTest, CandidatesIncludeNearby) {
  GridIndex<int> index(kRegion, 0.1);
  index.Insert({36.0, 24.0}, 1);
  index.Insert({36.01, 24.01}, 2);
  index.Insert({38.5, 26.5}, 3);
  const auto near = index.NeighborhoodCandidates({36.005, 24.005});
  EXPECT_TRUE(std::count(near.begin(), near.end(), 1));
  EXPECT_TRUE(std::count(near.begin(), near.end(), 2));
  EXPECT_FALSE(std::count(near.begin(), near.end(), 3));
}

TEST(GridIndexTest, BoxCandidatesSuperset) {
  Rng rng(6);
  GridIndex<std::size_t> index(kRegion, 0.2);
  std::vector<LatLon> points;
  for (std::size_t i = 0; i < 500; ++i) {
    points.push_back({rng.Uniform(35, 39), rng.Uniform(23, 27)});
    index.Insert(points.back(), i);
  }
  const BoundingBox query = BoundingBox::Of(36, 24, 37, 25);
  const auto candidates = index.Candidates(query);
  const std::set<std::size_t> cand_set(candidates.begin(), candidates.end());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (query.Contains(points[i])) {
      EXPECT_TRUE(cand_set.count(i)) << "missing point " << i;
    }
  }
}

// ------------------------------------------------------------ RTree

RTree BuildRandomTree(std::size_t n, std::uint64_t seed,
                      std::vector<BoundingBox>* boxes) {
  Rng rng(seed);
  std::vector<RTree::Entry> entries;
  for (std::size_t i = 0; i < n; ++i) {
    const double lat = rng.Uniform(35, 39);
    const double lon = rng.Uniform(23, 27);
    const double h = rng.Uniform(0.001, 0.05);
    const BoundingBox box = BoundingBox::Of(lat, lon, lat + h, lon + h);
    boxes->push_back(box);
    entries.push_back({box, i});
  }
  RTree tree;
  tree.Build(std::move(entries));
  return tree;
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_TRUE(tree.Search(kRegion).empty());
  EXPECT_TRUE(tree.Nearest({37, 25}, 3).empty());
}

TEST(RTreeTest, SearchMatchesBruteForce) {
  std::vector<BoundingBox> boxes;
  const RTree tree = BuildRandomTree(1000, 77, &boxes);
  Rng rng(78);
  for (int q = 0; q < 50; ++q) {
    const double lat = rng.Uniform(35, 38.5);
    const double lon = rng.Uniform(23, 26.5);
    const BoundingBox query =
        BoundingBox::Of(lat, lon, lat + rng.Uniform(0.05, 0.5),
                        lon + rng.Uniform(0.05, 0.5));
    std::set<std::uint64_t> expected;
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      if (query.Intersects(boxes[i])) expected.insert(i);
    }
    const auto got = tree.Search(query);
    const std::set<std::uint64_t> got_set(got.begin(), got.end());
    EXPECT_EQ(got_set, expected);
  }
}

TEST(RTreeTest, SearchPoint) {
  std::vector<RTree::Entry> entries = {
      {BoundingBox::Of(36, 24, 37, 25), 1},
      {BoundingBox::Of(36.5, 24.5, 37.5, 25.5), 2},
      {BoundingBox::Of(38, 26, 38.5, 26.5), 3},
  };
  RTree tree;
  tree.Build(std::move(entries));
  const auto hits = tree.SearchPoint({36.7, 24.7});
  const std::set<std::uint64_t> hit_set(hits.begin(), hits.end());
  EXPECT_EQ(hit_set, (std::set<std::uint64_t>{1, 2}));
}

TEST(RTreeTest, NearestMatchesBruteForce) {
  std::vector<BoundingBox> boxes;
  const RTree tree = BuildRandomTree(500, 79, &boxes);
  const LatLon query{37.0, 25.0};
  const auto got = tree.Nearest(query, 10);
  ASSERT_EQ(got.size(), 10u);
  // Brute force: order by min distance to the query point.
  std::vector<std::pair<double, std::uint64_t>> dist;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    dist.push_back({boxes[i].DistanceToMeters(query), i});
  }
  std::sort(dist.begin(), dist.end());
  for (std::size_t k = 0; k < got.size(); ++k) {
    // Distances must agree (ids may tie arbitrarily).
    EXPECT_NEAR(boxes[got[k]].DistanceToMeters(query), dist[k].first, 1e-6);
  }
}

TEST(RTreeTest, NearestOrdered) {
  std::vector<BoundingBox> boxes;
  const RTree tree = BuildRandomTree(300, 80, &boxes);
  const LatLon query{36.2, 26.2};
  const auto got = tree.Nearest(query, 20);
  for (std::size_t k = 1; k < got.size(); ++k) {
    EXPECT_LE(boxes[got[k - 1]].DistanceToMeters(query),
              boxes[got[k]].DistanceToMeters(query) + 1e-9);
  }
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Build({{BoundingBox::Of(36, 24, 37, 25), 42}});
  EXPECT_EQ(tree.size(), 1u);
  const auto hits = tree.Search(BoundingBox::Of(36.5, 24.5, 36.6, 24.6));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 42u);
}

class RTreeCapacityTest : public ::testing::TestWithParam<int> {};

TEST_P(RTreeCapacityTest, AnyCapacityGivesSameAnswers) {
  std::vector<BoundingBox> boxes;
  Rng rng(90);
  std::vector<RTree::Entry> entries;
  for (std::size_t i = 0; i < 400; ++i) {
    const double lat = rng.Uniform(35, 39);
    const double lon = rng.Uniform(23, 27);
    const BoundingBox box = BoundingBox::Of(lat, lon, lat + 0.01, lon + 0.01);
    boxes.push_back(box);
    entries.push_back({box, i});
  }
  RTree tree;
  tree.Build(std::move(entries), GetParam());
  const BoundingBox query = BoundingBox::Of(36, 24, 37.5, 25.5);
  std::set<std::uint64_t> expected;
  for (std::size_t i = 0; i < boxes.size(); ++i) {
    if (query.Intersects(boxes[i])) expected.insert(i);
  }
  const auto got = tree.Search(query);
  EXPECT_EQ(std::set<std::uint64_t>(got.begin(), got.end()), expected);
}

INSTANTIATE_TEST_SUITE_P(Capacities, RTreeCapacityTest,
                         ::testing::Values(2, 4, 8, 16, 64));

}  // namespace
}  // namespace datacron
