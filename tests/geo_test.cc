#include <gtest/gtest.h>

#include <cmath>

#include "geo/bbox.h"
#include "geo/geo.h"
#include "geo/polygon.h"

namespace datacron {
namespace {

// ------------------------------------------------------------- distances

TEST(GeoTest, HaversineKnownDistance) {
  // Athens (37.98, 23.73) to Heraklion (35.34, 25.13): ~315 km.
  const double d = HaversineMeters({37.98, 23.73}, {35.34, 25.13});
  EXPECT_NEAR(d, 315000, 5000);
}

TEST(GeoTest, HaversineZero) {
  EXPECT_DOUBLE_EQ(HaversineMeters({10, 20}, {10, 20}), 0.0);
}

TEST(GeoTest, HaversineSymmetric) {
  const LatLon a{37.9, 23.7}, b{36.4, 25.4};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeoTest, OneDegreeLatitudeIs111Km) {
  const double d = HaversineMeters({30, 10}, {31, 10});
  EXPECT_NEAR(d, 111195, 200);
}

TEST(GeoTest, EquirectangularCloseToHaversineLocally) {
  const LatLon a{37.0, 24.0}, b{37.3, 24.4};
  const double h = HaversineMeters(a, b);
  const double e = EquirectangularMeters(a, b);
  EXPECT_NEAR(e, h, h * 0.005);
}

TEST(GeoTest, Distance3dIncludesAltitude) {
  const GeoPoint a{37, 24, 0};
  const GeoPoint b{37, 24, 3000};
  EXPECT_DOUBLE_EQ(Distance3dMeters(a, b), 3000.0);
}

// ------------------------------------------------------------- bearings

TEST(GeoTest, BearingCardinalDirections) {
  const LatLon origin{37, 24};
  EXPECT_NEAR(InitialBearingDeg(origin, {38, 24}), 0.0, 0.01);    // north
  EXPECT_NEAR(InitialBearingDeg(origin, {37, 25}), 90.0, 0.5);    // east
  EXPECT_NEAR(InitialBearingDeg(origin, {36, 24}), 180.0, 0.01);  // south
  EXPECT_NEAR(InitialBearingDeg(origin, {37, 23}), 270.0, 0.5);   // west
}

TEST(GeoTest, DestinationInverseOfBearing) {
  const LatLon origin{37.5, 24.2};
  const LatLon dest = DestinationPoint(origin, 63.0, 25000);
  EXPECT_NEAR(HaversineMeters(origin, dest), 25000, 1.0);
  EXPECT_NEAR(InitialBearingDeg(origin, dest), 63.0, 0.1);
}

TEST(GeoTest, DeadReckonStationary) {
  const GeoPoint p{37, 24, 100};
  const GeoPoint q = DeadReckon(p, 45, 0.0, 0.0, 600);
  EXPECT_NEAR(q.lat_deg, p.lat_deg, 1e-12);
  EXPECT_NEAR(q.lon_deg, p.lon_deg, 1e-12);
  EXPECT_DOUBLE_EQ(q.alt_m, 100.0);
}

TEST(GeoTest, DeadReckonClimb) {
  const GeoPoint p{37, 24, 1000};
  const GeoPoint q = DeadReckon(p, 0, 100.0, 10.0, 60);
  EXPECT_NEAR(HaversineMeters(p.ll(), q.ll()), 6000, 5);
  EXPECT_DOUBLE_EQ(q.alt_m, 1600.0);
}

TEST(GeoTest, CourseDifference) {
  EXPECT_DOUBLE_EQ(CourseDifferenceDeg(10, 350), 20.0);
  EXPECT_DOUBLE_EQ(CourseDifferenceDeg(0, 180), 180.0);
  EXPECT_DOUBLE_EQ(CourseDifferenceDeg(90, 90), 0.0);
  EXPECT_DOUBLE_EQ(CourseDifferenceDeg(359, 1), 2.0);
}

TEST(GeoTest, WrapLongitude) {
  EXPECT_DOUBLE_EQ(WrapLongitude(181), -179.0);
  EXPECT_DOUBLE_EQ(WrapLongitude(-181), 179.0);
  EXPECT_DOUBLE_EQ(WrapLongitude(540), 180.0 - 360.0);
  EXPECT_DOUBLE_EQ(WrapLongitude(90), 90.0);
}

TEST(GeoTest, IsValidPosition) {
  EXPECT_TRUE(IsValidPosition({0, 0}));
  EXPECT_TRUE(IsValidPosition({-90, -180}));
  EXPECT_FALSE(IsValidPosition({91, 0}));
  EXPECT_FALSE(IsValidPosition({0, 180}));
  EXPECT_FALSE(IsValidPosition({NAN, 0}));
}

// ------------------------------------------------------------- ENU

TEST(GeoTest, EnuRoundTrip) {
  const GeoPoint ref{37.2, 24.1, 50};
  const GeoPoint p{37.25, 24.18, 250};
  const GeoPoint back = FromEnu(ref, ToEnu(ref, p));
  EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-9);
  EXPECT_NEAR(back.alt_m, p.alt_m, 1e-9);
}

TEST(GeoTest, EnuAxesOrientation) {
  const GeoPoint ref{37, 24, 0};
  const EnuVector north = ToEnu(ref, {37.01, 24, 0});
  EXPECT_GT(north.north_m, 0);
  EXPECT_NEAR(north.east_m, 0, 1e-6);
  const EnuVector east = ToEnu(ref, {37, 24.01, 0});
  EXPECT_GT(east.east_m, 0);
  EXPECT_NEAR(east.north_m, 0, 1e-6);
}

TEST(GeoTest, PointToSegment) {
  const LatLon a{37, 24}, b{37, 25};
  // Point directly above the middle of the segment.
  const double d = PointToSegmentMeters({37.1, 24.5}, a, b);
  EXPECT_NEAR(d, HaversineMeters({37, 24.5}, {37.1, 24.5}), 200);
  // Point beyond endpoint clamps to the endpoint.
  const double d2 = PointToSegmentMeters({37, 23.5}, a, b);
  EXPECT_NEAR(d2, HaversineMeters({37, 23.5}, a), 100);
}

// ------------------------------------------------------------- bbox

TEST(BBoxTest, EmptyBehaves) {
  BoundingBox e = BoundingBox::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_FALSE(e.Contains(LatLon{0, 0}));
  EXPECT_FALSE(e.Intersects(BoundingBox::Of(0, 0, 1, 1)));
  EXPECT_DOUBLE_EQ(e.AreaDeg2(), 0.0);
}

TEST(BBoxTest, ExtendAndContains) {
  BoundingBox b = BoundingBox::Empty();
  b.Extend(LatLon{37, 24});
  b.Extend(LatLon{38, 25});
  EXPECT_TRUE(b.Contains(LatLon{37.5, 24.5}));
  EXPECT_FALSE(b.Contains(LatLon{36.9, 24.5}));
  EXPECT_TRUE(b.Contains(LatLon{37, 24}));  // border inclusive
}

TEST(BBoxTest, IntersectsCases) {
  const BoundingBox a = BoundingBox::Of(0, 0, 10, 10);
  EXPECT_TRUE(a.Intersects(BoundingBox::Of(5, 5, 15, 15)));
  EXPECT_TRUE(a.Intersects(BoundingBox::Of(10, 10, 20, 20)));  // touch
  EXPECT_FALSE(a.Intersects(BoundingBox::Of(11, 0, 20, 10)));
  EXPECT_TRUE(a.Intersects(BoundingBox::Of(2, 2, 3, 3)));  // contained
}

TEST(BBoxTest, InflatedGrowsAndShrinks) {
  const BoundingBox a = BoundingBox::Of(10, 10, 20, 20);
  const BoundingBox grown = a.Inflated(1);
  EXPECT_TRUE(grown.Contains(LatLon{9.5, 9.5}));
  const BoundingBox shrunk = a.Inflated(-2);
  EXPECT_FALSE(shrunk.Contains(LatLon{11, 11}));
  EXPECT_TRUE(shrunk.Contains(LatLon{15, 15}));
}

TEST(BBoxTest, DistanceToPoint) {
  const BoundingBox a = BoundingBox::Of(37, 24, 38, 25);
  EXPECT_DOUBLE_EQ(a.DistanceToMeters({37.5, 24.5}), 0.0);
  EXPECT_GT(a.DistanceToMeters({39, 24.5}), 100000);
}

// ------------------------------------------------------------- polygon

TEST(PolygonTest, RectangleContains) {
  const Polygon p = Polygon::Rectangle(BoundingBox::Of(37, 24, 38, 25));
  EXPECT_TRUE(p.Contains({37.5, 24.5}));
  EXPECT_FALSE(p.Contains({38.5, 24.5}));
  EXPECT_FALSE(p.Contains({37.5, 25.5}));
}

TEST(PolygonTest, TriangleContains) {
  const Polygon tri({{0, 0}, {0, 10}, {10, 5}});
  EXPECT_TRUE(tri.Contains({3, 5}));
  EXPECT_FALSE(tri.Contains({8, 1}));
  EXPECT_FALSE(tri.Contains({-1, 5}));
}

TEST(PolygonTest, CircleApproximation) {
  const LatLon center{37, 24};
  const Polygon c = Polygon::Circle(center, 10000, 32);
  EXPECT_TRUE(c.Contains(center));
  EXPECT_TRUE(c.Contains(DestinationPoint(center, 45, 8000)));
  EXPECT_FALSE(c.Contains(DestinationPoint(center, 45, 12000)));
}

TEST(PolygonTest, AreaOfUnitSquare) {
  const Polygon sq = Polygon::Rectangle(BoundingBox::Of(0, 0, 1, 1));
  EXPECT_NEAR(sq.AreaDeg2(), 1.0, 1e-12);
}

TEST(PolygonTest, EmptyPolygonContainsNothing) {
  Polygon p;
  EXPECT_TRUE(p.empty());
  EXPECT_FALSE(p.Contains({0, 0}));
}

TEST(PolygonTest, CentroidOfSquare) {
  const Polygon sq = Polygon::Rectangle(BoundingBox::Of(0, 0, 2, 2));
  const LatLon c = sq.Centroid();
  EXPECT_NEAR(c.lat_deg, 1.0, 1e-12);
  EXPECT_NEAR(c.lon_deg, 1.0, 1e-12);
}

}  // namespace
}  // namespace datacron
