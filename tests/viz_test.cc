#include <gtest/gtest.h>

#include <algorithm>

#include "sources/ais_generator.h"
#include "viz/geojson.h"
#include "viz/raster.h"

namespace datacron {
namespace {

const BoundingBox kRegion = BoundingBox::Of(35, 23, 39, 27);

TEST(DensityRasterTest, AddAccumulates) {
  DensityRaster raster(kRegion, 10, 10);
  raster.Add({36.5, 24.5});
  raster.Add({36.5, 24.5});
  EXPECT_DOUBLE_EQ(raster.MaxValue(), 2.0);
}

TEST(DensityRasterTest, OutsidePointsIgnored) {
  DensityRaster raster(kRegion, 10, 10);
  raster.Add({50.0, 24.5});
  raster.Add({36.5, 40.0});
  EXPECT_DOUBLE_EQ(raster.MaxValue(), 0.0);
}

TEST(DensityRasterTest, CornerMapping) {
  DensityRaster raster(kRegion, 4, 4);
  raster.Add({35.01, 23.01});
  EXPECT_DOUBLE_EQ(raster.At(0, 0), 1.0);
  raster.Add({38.99, 26.99});
  EXPECT_DOUBLE_EQ(raster.At(3, 3), 1.0);
}

TEST(DensityRasterTest, AsciiDimensions) {
  DensityRaster raster(kRegion, 20, 8);
  raster.Add({36.5, 24.5});
  const std::string art = raster.ToAscii();
  // 8 lines of 20 chars plus newlines.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 8);
  EXPECT_EQ(art.size(), static_cast<std::size_t>((20 + 1) * 8));
  EXPECT_NE(art.find('@'), std::string::npos);  // the max cell
}

TEST(DensityRasterTest, NorthIsTopRow) {
  DensityRaster raster(kRegion, 4, 4);
  raster.Add({38.9, 24.5});  // north edge
  const std::string art = raster.ToAscii();
  const std::size_t first_newline = art.find('\n');
  EXPECT_NE(art.substr(0, first_newline).find('@'), std::string::npos);
}

TEST(DensityRasterTest, DownsampleConservesMass) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 10;
  cfg.duration = 20 * kMinute;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  DensityRaster raster(kRegion, 64, 64);
  raster.AddReports(ObserveFleet(traces, obs));
  const DensityRaster small = raster.Downsample(4);
  double total_big = 0, total_small = 0;
  for (int y = 0; y < raster.height(); ++y) {
    for (int x = 0; x < raster.width(); ++x) total_big += raster.At(x, y);
  }
  for (int y = 0; y < small.height(); ++y) {
    for (int x = 0; x < small.width(); ++x) total_small += small.At(x, y);
  }
  EXPECT_DOUBLE_EQ(total_big, total_small);
  EXPECT_EQ(small.width(), 16);
}

TEST(DensityRasterTest, CsvListsNonEmptyCells) {
  DensityRaster raster(kRegion, 10, 10);
  raster.Add({36.5, 24.5});
  raster.Add({37.5, 25.5});
  const std::string csv = raster.ToCsv();
  // Header + 2 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("x,y,lat,lon,count"), std::string::npos);
}

// ----------------------------------------------------------- GeoJSON

bool BalancedBraces(const std::string& s) {
  int depth = 0;
  for (char c : s) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    if (depth < 0) return false;
  }
  return depth == 0;
}

TEST(GeoJsonTest, TrajectoriesDocument) {
  Trajectory t;
  t.entity_id = 200000001;
  t.domain = Domain::kMaritime;
  for (int i = 0; i < 5; ++i) {
    PositionReport r;
    r.position = {36.0 + i * 0.01, 24.0, 0};
    r.timestamp = i * 1000;
    t.points.push_back(r);
  }
  const std::string doc = TrajectoriesToGeoJson({t, t});
  EXPECT_TRUE(BalancedBraces(doc));
  EXPECT_NE(doc.find("FeatureCollection"), std::string::npos);
  EXPECT_NE(doc.find("LineString"), std::string::npos);
  EXPECT_NE(doc.find("\"entity\":200000001"), std::string::npos);
  // Two features.
  std::size_t count = 0, pos = 0;
  while ((pos = doc.find("\"type\":\"Feature\"", pos)) !=
         std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_EQ(count, 2u);
}

TEST(GeoJsonTest, EventsDocumentEscapesLabels) {
  Event e;
  e.kind = EventKind::kAreaEntry;
  e.label = "port \"alpha\"";
  e.position = {36.5, 24.5, 0};
  e.entities = {7};
  const std::string doc = EventsToGeoJson({e});
  EXPECT_TRUE(BalancedBraces(doc));
  EXPECT_NE(doc.find("\\\"alpha\\\""), std::string::npos);
  EXPECT_NE(doc.find("area_entry"), std::string::npos);
}

TEST(GeoJsonTest, AreasDocumentClosesRing) {
  NamedArea a{"zone",
              Polygon::Rectangle(BoundingBox::Of(36, 24, 37, 25))};
  const std::string doc = AreasToGeoJson({a});
  EXPECT_TRUE(BalancedBraces(doc));
  // Closed ring: 5 coordinate pairs for a rectangle.
  std::size_t count = 0, pos = 0;
  while ((pos = doc.find("[24", pos)) != std::string::npos) {
    ++count;
    ++pos;
  }
  EXPECT_GE(count, 2u);
  EXPECT_NE(doc.find("Polygon"), std::string::npos);
}

TEST(GeoJsonTest, EmptyCollections) {
  EXPECT_TRUE(BalancedBraces(TrajectoriesToGeoJson({})));
  EXPECT_TRUE(BalancedBraces(EventsToGeoJson({})));
  EXPECT_TRUE(BalancedBraces(AreasToGeoJson({})));
}

}  // namespace
}  // namespace datacron
