#include <gtest/gtest.h>

#include <memory>

#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "query/parser.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

TEST(ParserTest, MinimalSelectWhere) {
  TermDictionary dict;
  auto parsed = ParseQuery(
      "SELECT ?v WHERE { ?v <rdf:type> <dc:Vessel> . }", &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const ParsedQuery& q = parsed.value();
  EXPECT_EQ(q.query.num_vars, 1);
  EXPECT_EQ(q.query.bgp.size(), 1u);
  EXPECT_EQ(q.select, (std::vector<std::string>{"v"}));
  EXPECT_TRUE(q.query.bgp[0].s.IsVar());
  EXPECT_FALSE(q.query.bgp[0].p.IsVar());
  EXPECT_EQ(dict.Text(q.query.bgp[0].p.term).value(), "rdf:type");
}

TEST(ParserTest, MultiplePatternsSharedVars) {
  TermDictionary dict;
  auto parsed = ParseQuery(
      "SELECT ?node ?speed WHERE {"
      "  ?node <rdf:type> <dc:PositionNode> ."
      "  ?node <dc:hasSpeed> ?speed ."
      "}",
      &dict);
  ASSERT_TRUE(parsed.ok());
  const ParsedQuery& q = parsed.value();
  EXPECT_EQ(q.query.num_vars, 2);
  EXPECT_EQ(q.query.bgp.size(), 2u);
  EXPECT_EQ(q.query.bgp[0].s.var, q.query.bgp[1].s.var);
  EXPECT_EQ(q.select_vars.size(), 2u);
}

TEST(ParserTest, LastPatternDotOptional) {
  TermDictionary dict;
  auto parsed =
      ParseQuery("SELECT ?v WHERE { ?v <rdf:type> <dc:Vessel> }", &dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().query.bgp.size(), 1u);
}

TEST(ParserTest, WithinClause) {
  TermDictionary dict;
  auto parsed = ParseQuery(
      "SELECT ?n WHERE { ?n <rdf:type> <dc:PositionNode> . }"
      " WITHIN 36.0 24.0 37.0 25.0 ON ?n",
      &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const Query& q = parsed.value().query;
  ASSERT_EQ(q.spatial.size(), 1u);
  EXPECT_EQ(q.spatial[0].var, 0);
  EXPECT_DOUBLE_EQ(q.spatial[0].box.min_lat, 36.0);
  EXPECT_DOUBLE_EQ(q.spatial[0].box.max_lon, 25.0);
}

TEST(ParserTest, DuringClauseIsoAndEpoch) {
  TermDictionary dict;
  auto parsed = ParseQuery(
      "SELECT ?n WHERE { ?n <rdf:type> <dc:PositionNode> . }"
      " DURING 2017-03-20T00:00:00Z 2017-03-21T00:00:00Z ON ?n",
      &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed.value().query.temporal.size(), 1u);
  EXPECT_EQ(parsed.value().query.temporal[0].t_min, 1489968000000);

  auto parsed2 = ParseQuery(
      "SELECT ?n WHERE { ?n <rdf:type> <dc:PositionNode> . }"
      " DURING 1000 2000 ON ?n",
      &dict);
  ASSERT_TRUE(parsed2.ok());
  EXPECT_EQ(parsed2.value().query.temporal[0].t_min, 1000);
  EXPECT_EQ(parsed2.value().query.temporal[0].t_max, 2000);
}

TEST(ParserTest, SelectStar) {
  TermDictionary dict;
  auto parsed = ParseQuery(
      "SELECT * WHERE { ?a <dc:hasNextNode> ?b . }", &dict);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().select,
            (std::vector<std::string>{"a", "b"}));
}

TEST(ParserTest, TypedLiteralObject) {
  TermDictionary dict;
  auto parsed = ParseQuery(
      "SELECT ?n WHERE { ?n <dc:hasNodeKind> \"stop_start\"^^string . }",
      &dict);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const TermId lit = parsed.value().query.bgp[0].o.term;
  EXPECT_EQ(dict.Text(lit).value(), "stop_start");
  EXPECT_EQ(dict.Kind(lit), TermKind::kLiteralString);
}

TEST(ParserTest, Errors) {
  TermDictionary dict;
  EXPECT_FALSE(ParseQuery("", &dict).ok());
  EXPECT_FALSE(ParseQuery("WHERE { ?a <b> <c> . }", &dict).ok());
  EXPECT_FALSE(ParseQuery("SELECT ?a { ?a <b> <c> . }", &dict).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?a WHERE { ?a <b> . }", &dict).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT ?a WHERE { ?a <b> <c> .", &dict).ok());
  EXPECT_FALSE(ParseQuery(
      "SELECT ?zzz WHERE { ?a <b> <c> . }", &dict).ok());  // unused var
  EXPECT_FALSE(ParseQuery(
      "SELECT ?a WHERE { ?a <b> <c> . } WITHIN 1 2 3 ON ?a", &dict).ok());
}

TEST(ParserTest, ParsedQueryExecutesEndToEnd) {
  // Full integration: parse text, run it against a fleet store.
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  AisGeneratorConfig fleet;
  fleet.num_vessels = 6;
  fleet.duration = 20 * kMinute;
  ObservationConfig obs;
  std::vector<Triple> triples;
  for (const auto& r : ObserveFleet(GenerateAisFleet(fleet), obs)) {
    const auto ts = rdfizer.TransformReport(r);
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  HashPartitioner scheme(2, &rdfizer.tags());
  PartitionedRdfStore store;
  store.Load(triples, scheme, rdfizer.grid());
  QueryEngine engine(&store, &rdfizer);

  auto parsed = ParseQuery(
      "SELECT ?v WHERE { ?v <rdf:type> <dc:Vessel> . }", &dict);
  ASSERT_TRUE(parsed.ok());
  const auto rs = engine.ExecuteGlobal(parsed.value().query);
  EXPECT_EQ(rs.rows.size(), 6u);

  // Spatiotemporal text query over nodes.
  auto parsed2 = ParseQuery(
      "SELECT ?n ?s WHERE {"
      "  ?n <rdf:type> <dc:PositionNode> ."
      "  ?n <dc:hasSpeed> ?s ."
      "} WITHIN 35.0 23.0 39.0 27.0 ON ?n",
      &dict);
  ASSERT_TRUE(parsed2.ok());
  const auto rs2 = engine.ExecuteGlobal(parsed2.value().query);
  EXPECT_GT(rs2.rows.size(), 0u);
}

}  // namespace
}  // namespace datacron
