// Determinism and correctness of the parallel query executor: serial and
// pooled execution must return *byte-identical* row vectors (not just
// equal row sets) at every thread count, for every query class and both
// strategies. Plus unit tests for the open-addressing FlatHashMap /
// FlatHashSet the join path is built on.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "common/flat_hash.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "query/query.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

// ---------------------------------------------------------------------------
// FlatHashMap / FlatHashSet

TEST(FlatHashMapTest, InsertFindRoundTrip) {
  FlatHashMap<std::uint64_t, int> m;
  EXPECT_TRUE(m.empty());
  m[7] = 42;
  m[9] = 13;
  ASSERT_NE(m.Find(7), nullptr);
  EXPECT_EQ(*m.Find(7), 42);
  EXPECT_EQ(*m.Find(9), 13);
  EXPECT_EQ(m.Find(8), nullptr);
  EXPECT_EQ(m.size(), 2u);
  m[7] = 43;  // overwrite, not duplicate
  EXPECT_EQ(*m.Find(7), 43);
  EXPECT_EQ(m.size(), 2u);
}

TEST(FlatHashMapTest, GrowthPreservesAllEntries) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  Rng rng(991);
  std::vector<std::uint64_t> keys;
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 20000; ++i) {
    const auto k =
        static_cast<std::uint64_t>(rng.UniformInt(1, 1'000'000'000));
    if (!seen.insert(k).second) continue;
    keys.push_back(k);
    m[k] = k * 3;
  }
  EXPECT_EQ(m.size(), keys.size());
  EXPECT_GT(m.capacity(), 16u);  // many rehashes happened
  for (std::uint64_t k : keys) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), k * 3);
  }
  // Capacity stays a power of two with load factor <= 3/4.
  EXPECT_EQ(m.capacity() & (m.capacity() - 1), 0u);
  EXPECT_LE(m.size() * 4, m.capacity() * 3);
}

TEST(FlatHashMapTest, CollidingKeysProbeLinearly) {
  // Dense sequential keys plus sparse huge keys force slot collisions at
  // every capacity; all entries must stay reachable (tombstone-free
  // probing never breaks a chain because nothing is ever deleted).
  FlatHashMap<std::uint64_t, int> m;
  for (std::uint64_t k = 1; k <= 4096; ++k) m[k] = static_cast<int>(k);
  for (std::uint64_t k = 1; k <= 4096; ++k) {
    ASSERT_NE(m.Find(k), nullptr) << k;
    EXPECT_EQ(*m.Find(k), static_cast<int>(k));
  }
  for (std::uint64_t k = 5000; k <= 6000; ++k) EXPECT_EQ(m.Find(k), nullptr);
}

TEST(FlatHashMapTest, ReserveAvoidsRehash) {
  FlatHashMap<std::uint64_t, int> m;
  m.Reserve(1000);
  const std::size_t cap = m.capacity();
  for (std::uint64_t k = 1; k <= 1000; ++k) m[k] = 1;
  EXPECT_EQ(m.capacity(), cap);
  EXPECT_EQ(m.size(), 1000u);
}

TEST(FlatHashMapTest, ForEachVisitsEverything) {
  FlatHashMap<std::uint64_t, std::uint64_t> m;
  std::uint64_t want_sum = 0;
  for (std::uint64_t k = 1; k <= 500; ++k) {
    m[k * 977] = k;
    want_sum += k;
  }
  std::uint64_t got_sum = 0;
  std::size_t count = 0;
  m.ForEach([&](std::uint64_t key, std::uint64_t value) {
    EXPECT_EQ(key, value * 977);
    got_sum += value;
    ++count;
  });
  EXPECT_EQ(count, 500u);
  EXPECT_EQ(got_sum, want_sum);
}

TEST(FlatHashSetTest, InsertReportsNovelty) {
  FlatHashSet<TermId> s;
  EXPECT_TRUE(s.Insert(5));
  EXPECT_FALSE(s.Insert(5));
  EXPECT_TRUE(s.Insert(6));
  EXPECT_TRUE(s.Contains(5));
  EXPECT_TRUE(s.Contains(6));
  EXPECT_FALSE(s.Contains(7));
  EXPECT_EQ(s.size(), 2u);
}

// ---------------------------------------------------------------------------
// Parallel query determinism over an AIS workload

/// Fixture: a fleet RDF-ized into an 8-way Hilbert-partitioned store plus
/// a 1-partition reference store, and the three E5 query classes plus the
/// join-heavy analytical query.
class QueryParallelTest : public ::testing::Test {
 protected:
  QueryParallelTest() : vocab_(&dict_) {
    rdfizer_ = std::make_unique<Rdfizer>(Rdfizer::Config{}, &dict_, &vocab_);
    AisGeneratorConfig fleet;
    fleet.num_vessels = 10;
    fleet.duration = 20 * kMinute;
    traces_ = GenerateAisFleet(fleet);
    ObservationConfig obs;
    obs.fixed_interval_ms = 15 * kSecond;
    for (const auto& r : ObserveFleet(traces_, obs)) {
      const auto ts = rdfizer_->TransformReport(r);
      triples_.insert(triples_.end(), ts.begin(), ts.end());
    }
    scheme_ =
        HilbertPartitioner::Build(8, &rdfizer_->tags(), rdfizer_->grid());
    store_.Load(triples_, *scheme_, rdfizer_->grid(), vocab_.p_next_node);
    HashPartitioner single(1, &rdfizer_->tags());
    reference_.Load(triples_, single, rdfizer_->grid());

    {
      QueryBuilder qb;
      qb.Pattern(QueryTerm::Var(qb.Var("node")),
                 QueryTerm::Bound(vocab_.p_type),
                 QueryTerm::Bound(vocab_.c_position_node));
      qb.WhereVar("node", vocab_.p_speed, "speed");
      qb.Within("node", BoundingBox::Of(35.0, 23.0, 37.5, 25.5));
      spatial_query_ = qb.Build();
    }
    {
      QueryBuilder qb;
      qb.Where("node", vocab_.p_of_entity,
               dict_.Intern(EntityIri(traces_[0].entity_id)));
      qb.WhereVar("node", vocab_.p_speed, "speed");
      star_query_ = qb.Build();
    }
    {
      QueryBuilder qb;
      qb.WhereVar("a", vocab_.p_next_node, "b");
      qb.WhereVar("b", vocab_.p_next_node, "c");
      qb.Within("a", BoundingBox::Of(35.0, 23.0, 37.5, 25.5));
      path_query_ = qb.Build();
    }
    {
      QueryBuilder qb;
      qb.Pattern(QueryTerm::Var(qb.Var("v")),
                 QueryTerm::Bound(vocab_.p_type),
                 QueryTerm::Bound(vocab_.c_vessel));
      qb.Pattern(QueryTerm::Var(qb.Var("node")),
                 QueryTerm::Bound(vocab_.p_of_entity),
                 QueryTerm::Var(qb.Var("v")));
      qb.WhereVar("node", vocab_.p_speed, "speed");
      qb.Within("node", BoundingBox::Of(35.0, 23.0, 37.5, 25.5));
      join_query_ = qb.Build();
    }
  }

  std::vector<const Query*> AllQueries() const {
    return {&spatial_query_, &star_query_, &path_query_, &join_query_};
  }

  static std::set<Binding> RowSet(const ResultSet& rs) {
    return {rs.rows.begin(), rs.rows.end()};
  }

  TermDictionary dict_;
  Vocab vocab_;
  std::unique_ptr<Rdfizer> rdfizer_;
  std::vector<TruthTrace> traces_;
  std::vector<Triple> triples_;
  std::unique_ptr<HilbertPartitioner> scheme_;
  PartitionedRdfStore store_;
  PartitionedRdfStore reference_;
  Query spatial_query_, star_query_, path_query_, join_query_;
};

TEST_F(QueryParallelTest, RowsByteIdenticalAtEveryThreadCount) {
  QueryEngine serial(&store_, rdfizer_.get(), nullptr);
  const char* names[] = {"spatial", "star", "path", "join"};
  std::vector<ResultSet> want_local, want_global;
  for (const Query* q : AllQueries()) {
    want_local.push_back(serial.ExecuteLocal(*q));
    want_global.push_back(serial.ExecuteGlobal(*q));
  }
  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    QueryEngine par(&store_, rdfizer_.get(), &pool);
    const auto queries = AllQueries();
    for (std::size_t i = 0; i < queries.size(); ++i) {
      // Exact vector equality: same rows in the same order, not a set
      // comparison — the determinism contract of the executor.
      EXPECT_EQ(par.ExecuteLocal(*queries[i]).rows, want_local[i].rows)
          << names[i] << " local, threads=" << threads;
      EXPECT_EQ(par.ExecuteGlobal(*queries[i]).rows, want_global[i].rows)
          << names[i] << " global, threads=" << threads;
    }
  }
}

TEST_F(QueryParallelTest, GlobalMatchesReferenceStore) {
  // The columnar packed-key join path must stay *complete*: global
  // execution on the partitioned store equals the 1-partition reference.
  ThreadPool pool(4);
  QueryEngine part_engine(&store_, rdfizer_.get(), &pool);
  QueryEngine ref_engine(&reference_, rdfizer_.get());
  for (const Query* q : AllQueries()) {
    const auto got = part_engine.ExecuteGlobal(*q);
    const auto ref = ref_engine.ExecuteGlobal(*q);
    EXPECT_EQ(RowSet(got), RowSet(ref));
    EXPECT_FALSE(ref.rows.empty());
  }
}

TEST_F(QueryParallelTest, LocalStarMatchesReference) {
  // Star queries are colocated under subject placement: the local union
  // must be complete and identical to the reference.
  ThreadPool pool(4);
  QueryEngine part_engine(&store_, rdfizer_.get(), &pool);
  QueryEngine ref_engine(&reference_, rdfizer_.get());
  EXPECT_EQ(RowSet(part_engine.ExecuteLocal(star_query_)),
            RowSet(ref_engine.ExecuteLocal(star_query_)));
}

TEST_F(QueryParallelTest, StageBreakdownPopulated) {
  QueryEngine engine(&store_, rdfizer_.get());
  const auto rs = engine.ExecuteGlobal(join_query_);
  EXPECT_FALSE(rs.rows.empty());
  // 3 patterns -> 2 joins, each recording its intermediate row count.
  EXPECT_EQ(rs.stats.join_rows.size(), 2u);
  EXPECT_GE(rs.stats.join_rows.back(), rs.stats.result_rows);
  EXPECT_GE(rs.stats.plan_ms, 0.0);
  EXPECT_GE(rs.stats.scan_ms, 0.0);
  EXPECT_GE(rs.stats.join_ms, 0.0);
  EXPECT_GE(rs.stats.filter_ms, 0.0);
  EXPECT_GE(rs.stats.wall_ms,
            rs.stats.scan_ms + rs.stats.join_ms + rs.stats.filter_ms);
  EXPECT_NE(rs.stats.ToString().find("join="), std::string::npos);
}

TEST_F(QueryParallelTest, PredicateExistenceSkipsPartitions) {
  // Every partition's predicate set is populated by Load...
  for (int p = 0; p < store_.num_partitions(); ++p) {
    EXPECT_TRUE(store_.meta(p).MightMatchPredicate(vocab_.p_type));
    EXPECT_TRUE(store_.meta(p).MightMatchPredicate(kInvalidTermId));
  }
  // ...so a query over a predicate no partition stores scans nothing.
  QueryBuilder qb;
  qb.WhereVar("a", dict_.Intern("dc:noSuchPredicate"), "b");
  QueryEngine engine(&store_, rdfizer_.get());
  const auto local = engine.ExecuteLocal(qb.Build());
  EXPECT_TRUE(local.rows.empty());
  EXPECT_EQ(local.stats.partitions_scanned, 0);
  EXPECT_TRUE(engine.ExecuteGlobal(qb.Build()).rows.empty());
}

TEST_F(QueryParallelTest, LocalResultsIndependentOfPoolChunking) {
  // Run the same pooled query repeatedly: scheduling may differ run to
  // run, output must not.
  ThreadPool pool(8);
  QueryEngine par(&store_, rdfizer_.get(), &pool);
  const auto first = par.ExecuteGlobal(path_query_);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(par.ExecuteGlobal(path_query_).rows, first.rows) << i;
    EXPECT_EQ(par.ExecuteLocal(path_query_).rows,
              par.ExecuteLocal(path_query_).rows);
  }
}

}  // namespace
}  // namespace datacron
