// Subscription tier: registry semantics (add/remove/idempotency,
// mid-epoch unsubscribe), geofence edge cases (antimeridian wrap,
// boundary inclusivity, dwell), byte-identity of the incremental
// per-epoch evaluation with the full re-evaluation oracle at every
// shard x epoch-size combination, the broker/client wire protocol over
// loopback and TCP, and the cluster leg (coordinator-assigned ids,
// node-shipped deltas) against a single-process engine.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cluster/local_cluster.h"
#include "common/thread_pool.h"
#include "datacron/engine.h"
#include "net/codec.h"
#include "net/sub_channel.h"
#include "net/transport.h"
#include "sub/oracle.h"
#include "sub/registry.h"
#include "sub/subscription.h"

namespace datacron {
namespace {

PositionReport ReportAt(EntityId entity, TimestampMs ts, double lat,
                        double lon, double speed = 8.0) {
  PositionReport r;
  r.entity_id = entity;
  r.timestamp = ts;
  r.position = {lat, lon, 0.0};
  r.speed_mps = speed;
  r.course_deg = 90.0;
  return r;
}

/// Six entities sweeping east across the default engine region. Entities
/// 1 and 2 ride the same latitude ~200 m apart (steady encounters for the
/// proximity subs); everyone crosses the geofence window around
/// lon 24.8..25.2 partway through, so enters, dwells and exits all fire.
std::vector<PositionReport> SubStream(int steps = 160) {
  std::vector<PositionReport> out;
  out.reserve(static_cast<std::size_t>(steps) * 6);
  for (int k = 0; k < steps; ++k) {
    const TimestampMs t = static_cast<TimestampMs>(k) * 30 * kSecond;
    for (EntityId e = 1; e <= 6; ++e) {
      const double lat = e <= 2 ? 36.0 : 35.25 + 0.25 * e;
      const double lon = 24.0 + 0.012 * k + 0.002 * e;
      out.push_back(ReportAt(e, t, lat, lon));
    }
  }
  return out;
}

/// The geofence window SubStream crosses.
BoundingBox WatchBox() { return BoundingBox::Of(35.9, 24.8, 37.0, 25.2); }

/// Covers the whole region with far more grid cells than
/// max_cells_per_box, so it lands in the BboxSoa catchall.
BoundingBox WideBox() { return BoundingBox::Of(30.0, 15.0, 45.0, 40.0); }

/// The standing-query mix every identity test registers, in the same
/// order so ids line up across engines, registries and clusters:
/// entity + fleet geofences (grid, catchall and polygon indexed),
/// proximity watches with and without rate limiting, and hotspots on
/// both index paths, spread over three subscribers.
template <typename SubscribeFn>
void RegisterMix(SubscribeFn&& subscribe) {
  GeofenceSpec entity_watch;
  entity_watch.bbox = WatchBox();
  entity_watch.entity = 1;
  entity_watch.dwell_ms = 5 * kMinute;
  ASSERT_TRUE(subscribe(1, SubscriptionSpec::Geofence(entity_watch)).ok());

  GeofenceSpec fleet_watch;
  fleet_watch.bbox = WatchBox();
  fleet_watch.all_entities = true;
  ASSERT_TRUE(subscribe(2, SubscriptionSpec::Geofence(fleet_watch)).ok());

  GeofenceSpec wide_watch;
  wide_watch.bbox = WideBox();
  wide_watch.all_entities = true;
  ASSERT_TRUE(subscribe(1, SubscriptionSpec::Geofence(wide_watch)).ok());

  GeofenceSpec poly_watch;
  poly_watch.polygon = {{35.9, 24.8}, {37.0, 25.0}, {35.9, 25.2}};
  poly_watch.all_entities = true;
  ASSERT_TRUE(subscribe(3, SubscriptionSpec::Geofence(poly_watch)).ok());

  ASSERT_TRUE(subscribe(2, SubscriptionSpec::Proximity({1, 0})).ok());
  ASSERT_TRUE(
      subscribe(3, SubscriptionSpec::Proximity({2, 10 * kMinute})).ok());

  ASSERT_TRUE(
      subscribe(1, SubscriptionSpec::Hotspot({WatchBox(), 4.0, 2})).ok());
  ASSERT_TRUE(
      subscribe(3, SubscriptionSpec::Hotspot({WideBox(), 50.0, 4})).ok());
}

/// Canonical byte form of a batch sequence: each batch exactly as it
/// travels on the wire (kDeltaBatch frame), concatenated in emit order.
std::string EncodeBatches(const std::vector<DeltaBatch>& batches) {
  std::string out;
  for (const DeltaBatch& b : batches) out += Encode(DeltaBatchMsg{b});
  return out;
}

/// The slice of an epoch's events the registry's proximity watches see:
/// only the global CEP stage's encounter/forecast emissions.
std::vector<Event> ProximityOnly(std::span<const Event> events) {
  std::vector<Event> out;
  for (const Event& ev : events) {
    if (ev.kind == EventKind::kEncounter ||
        ev.kind == EventKind::kCollisionForecast) {
      out.push_back(ev);
    }
  }
  return out;
}

// --- registry semantics ---------------------------------------------------

TEST(SubRegistryTest, SubscribeValidatesSpecsAndAssignsAscendingIds) {
  SubscriptionRegistry reg;
  EXPECT_FALSE(reg.ever_active());

  GeofenceSpec g;
  g.bbox = WatchBox();
  g.entity = 7;
  const auto a = reg.Subscribe(1, SubscriptionSpec::Geofence(g));
  ASSERT_TRUE(a.ok());
  const auto b = reg.Subscribe(1, SubscriptionSpec::Proximity({7, 0}));
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a.value(), b.value());
  EXPECT_EQ(reg.active_count(), 2u);
  EXPECT_TRUE(reg.ever_active());

  // Invalid specs are rejected at registration, not at evaluation.
  GeofenceSpec two_vertex;
  two_vertex.polygon = {{0, 0}, {1, 1}};
  EXPECT_FALSE(reg.Subscribe(1, SubscriptionSpec::Geofence(two_vertex)).ok());
  GeofenceSpec inverted;
  inverted.bbox = BoundingBox::Of(40.0, 20.0, 30.0, 25.0);
  EXPECT_FALSE(reg.Subscribe(1, SubscriptionSpec::Geofence(inverted)).ok());
  EXPECT_FALSE(
      reg.Subscribe(1, SubscriptionSpec::Hotspot({WatchBox(), 0.0, 1})).ok());
  EXPECT_FALSE(
      reg.Subscribe(1, SubscriptionSpec::Hotspot({WatchBox(), 1.0, 0})).ok());
  EXPECT_EQ(reg.active_count(), 2u);
}

TEST(SubRegistryTest, SubscribeWithIdIsIdempotentAndGuardsConflicts) {
  SubscriptionRegistry reg;
  GeofenceSpec g;
  g.bbox = WatchBox();
  g.all_entities = true;
  const SubscriptionSpec spec = SubscriptionSpec::Geofence(g);

  EXPECT_FALSE(reg.SubscribeWithId(0, 1, spec).ok());  // 0 is reserved
  ASSERT_TRUE(reg.SubscribeWithId(42, 1, spec).ok());
  // The cluster re-broadcast case: the identical registration is a no-op.
  EXPECT_TRUE(reg.SubscribeWithId(42, 1, spec).ok());
  EXPECT_EQ(reg.active_count(), 1u);
  // Same id, different owner or different predicate: conflict.
  EXPECT_EQ(reg.SubscribeWithId(42, 2, spec).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(reg.SubscribeWithId(42, 1, SubscriptionSpec::Proximity({1, 0}))
                .code(),
            StatusCode::kAlreadyExists);

  // Fresh ids keep ascending past the caller-chosen one.
  const auto next = reg.Subscribe(1, spec);
  ASSERT_TRUE(next.ok());
  EXPECT_GT(next.value(), 42u);
}

TEST(SubRegistryTest, UnsubscribeTombstonesOnce) {
  SubscriptionRegistry reg;
  GeofenceSpec g;
  g.bbox = WatchBox();
  g.entity = 3;
  const auto id = reg.Subscribe(1, SubscriptionSpec::Geofence(g));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(reg.Unsubscribe(id.value()));
  EXPECT_FALSE(reg.Unsubscribe(id.value()));  // already inactive
  EXPECT_FALSE(reg.Unsubscribe(9999));        // unknown
  EXPECT_EQ(reg.active_count(), 0u);
  EXPECT_TRUE(reg.ever_active());  // the engine hook stays armed
}

TEST(SubRegistryTest, UnsubscribeMidEpochDropsItsPendingDeltas) {
  SubscriptionRegistry reg;
  GeofenceSpec g;
  g.bbox = WatchBox();
  g.entity = 5;
  const auto id = reg.Subscribe(1, SubscriptionSpec::Geofence(g));
  ASSERT_TRUE(id.ok());

  // The shard emits an enter for the still-open epoch...
  std::vector<SubDelta> deltas;
  FlatHashMap<std::uint64_t, double> counts;
  reg.EvalKeyed(0, ReportAt(5, 1000, 36.0, 25.0), &deltas, &counts);
  ASSERT_EQ(deltas.size(), 1u);
  reg.AddKeyedDeltas(deltas);

  // ...then the subscription dies before the barrier closes the epoch:
  // the delta must not reach a subscriber that no longer wants it.
  ASSERT_TRUE(reg.Unsubscribe(id.value()));
  reg.CloseEpoch(1000);
  EXPECT_TRUE(reg.TakeBatches().empty());
}

// --- geofence edge cases --------------------------------------------------

/// Runs one report per epoch through a 1-shard registry and returns every
/// delta in emission order.
std::vector<SubDelta> RunReports(SubscriptionRegistry* reg,
                                 std::span<const PositionReport> reports) {
  std::vector<SubDelta> all;
  for (const PositionReport& r : reports) {
    std::vector<SubDelta> deltas;
    FlatHashMap<std::uint64_t, double> counts;
    reg->EvalKeyed(0, r, &deltas, &counts);
    reg->AddKeyedDeltas(deltas);
    reg->AddHotspotCounts(counts);
    reg->CloseEpoch(r.timestamp);
  }
  for (const DeltaBatch& b : reg->TakeBatches()) {
    all.insert(all.end(), b.deltas.begin(), b.deltas.end());
  }
  return all;
}

TEST(GeofenceEdgeTest, AntimeridianWrapBoxFiresOnBothSides) {
  SubscriptionRegistry reg;
  GeofenceSpec g;
  // min_lon > max_lon: a box straddling the antimeridian from 175E to
  // 175W, split into two plain boxes at registration.
  g.bbox = BoundingBox::Of(-10.0, 175.0, 10.0, -175.0);
  g.all_entities = true;
  ASSERT_TRUE(reg.Subscribe(1, SubscriptionSpec::Geofence(g)).ok());

  const std::vector<PositionReport> track = {
      ReportAt(9, 0 * kMinute, 0.0, 170.0),    // west of the box
      ReportAt(9, 1 * kMinute, 0.0, 179.5),    // inside, eastern half
      ReportAt(9, 2 * kMinute, 0.0, -179.5),   // still inside, western half
      ReportAt(9, 3 * kMinute, 0.0, -170.0),   // out the far side
      ReportAt(9, 4 * kMinute, 0.0, 0.0),      // nowhere near
  };
  const std::vector<SubDelta> deltas = RunReports(&reg, track);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].kind, DeltaKind::kEnter);
  EXPECT_EQ(deltas[0].time, 1 * kMinute);
  // Crossing +-180 inside the box is not an exit: the wrap box is one
  // region, not two.
  EXPECT_EQ(deltas[1].kind, DeltaKind::kExit);
  EXPECT_EQ(deltas[1].time, 3 * kMinute);
  EXPECT_EQ(deltas[1].value, static_cast<double>(2 * kMinute));
}

TEST(GeofenceEdgeTest, BoundaryReportIsInside) {
  SubscriptionRegistry reg;
  GeofenceSpec g;
  g.bbox = BoundingBox::Of(35.0, 24.0, 36.0, 25.0);
  g.all_entities = true;
  ASSERT_TRUE(reg.Subscribe(1, SubscriptionSpec::Geofence(g)).ok());

  // A report exactly on the corner is contained (closed box), so the
  // pair is one enter at the boundary and one exit just past it.
  const std::vector<PositionReport> track = {
      ReportAt(4, 0, 36.0, 25.0),          // exactly the max corner
      ReportAt(4, kMinute, 36.0, 25.0001),  // epsilon outside
  };
  const std::vector<SubDelta> deltas = RunReports(&reg, track);
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].kind, DeltaKind::kEnter);
  EXPECT_EQ(deltas[1].kind, DeltaKind::kExit);
}

TEST(GeofenceEdgeTest, DwellFiresOncePerVisit) {
  SubscriptionRegistry reg;
  GeofenceSpec g;
  g.bbox = BoundingBox::Of(35.0, 24.0, 36.0, 25.0);
  g.entity = 8;
  g.dwell_ms = 2 * kMinute;
  ASSERT_TRUE(reg.Subscribe(1, SubscriptionSpec::Geofence(g)).ok());

  const std::vector<PositionReport> track = {
      ReportAt(8, 0 * kMinute, 35.5, 24.5),  // enter
      ReportAt(8, 1 * kMinute, 35.5, 24.6),  // inside, dwell not yet
      ReportAt(8, 2 * kMinute, 35.5, 24.7),  // dwell fires (>= 2 min)
      ReportAt(8, 3 * kMinute, 35.5, 24.8),  // still inside, no repeat
      ReportAt(8, 4 * kMinute, 35.5, 26.0),  // exit
      ReportAt(8, 5 * kMinute, 35.5, 24.5),  // second visit
      ReportAt(8, 8 * kMinute, 35.5, 24.6),  // dwell re-arms per visit
  };
  const std::vector<SubDelta> deltas = RunReports(&reg, track);
  ASSERT_EQ(deltas.size(), 5u);
  EXPECT_EQ(deltas[0].kind, DeltaKind::kEnter);
  EXPECT_EQ(deltas[1].kind, DeltaKind::kDwell);
  EXPECT_EQ(deltas[1].value, static_cast<double>(2 * kMinute));
  EXPECT_EQ(deltas[2].kind, DeltaKind::kExit);
  EXPECT_EQ(deltas[2].value, static_cast<double>(4 * kMinute));
  EXPECT_EQ(deltas[3].kind, DeltaKind::kEnter);
  EXPECT_EQ(deltas[4].kind, DeltaKind::kDwell);
  EXPECT_EQ(deltas[4].value, static_cast<double>(3 * kMinute));
}

// --- incremental vs full re-evaluation ------------------------------------

/// Runs the stream through a sharded engine in epoch_size chunks,
/// capturing each epoch's wire bytes and its proximity-event slice (what
/// the oracle needs to replay the same epoch).
struct IncrementalRun {
  std::string bytes;
  std::vector<std::vector<Event>> epoch_events;
  std::vector<TimestampMs> epoch_close_ts;
};

IncrementalRun RunIncremental(const std::vector<PositionReport>& stream,
                              std::size_t num_shards,
                              std::size_t epoch_size) {
  DatacronEngine::Config cfg;
  cfg.num_shards = num_shards;
  cfg.epoch_size = epoch_size;
  DatacronEngine engine(cfg);
  RegisterMix([&](SubscriberId client, const SubscriptionSpec& spec) {
    return engine.subscriptions()->Subscribe(client, spec);
  });

  std::unique_ptr<ThreadPool> pool;
  if (num_shards > 1) pool = std::make_unique<ThreadPool>(4);

  IncrementalRun run;
  for (std::size_t off = 0; off < stream.size(); off += epoch_size) {
    const std::size_t n = std::min(epoch_size, stream.size() - off);
    const std::span<const PositionReport> chunk(stream.data() + off, n);
    const std::vector<Event> events = engine.IngestBatch(chunk, pool.get());
    run.epoch_events.push_back(ProximityOnly(events));
    run.epoch_close_ts.push_back(chunk.back().timestamp);
    run.bytes += EncodeBatches(engine.subscriptions()->TakeBatches());
  }
  return run;
}

TEST(SubIdentityTest, IncrementalMatchesOracleAtEveryShardAndEpochSize) {
  const std::vector<PositionReport> stream = SubStream();

  for (const std::size_t epoch_size : {std::size_t{1}, std::size_t{32},
                                       std::size_t{128}}) {
    // The oracle re-evaluates every subscription against the whole epoch,
    // from its own registry carrying the identical standing queries.
    SubscriptionRegistry oracle_reg;
    RegisterMix([&](SubscriberId client, const SubscriptionSpec& spec) {
      return oracle_reg.Subscribe(client, spec);
    });
    SubscriptionOracle oracle(&oracle_reg);

    // One reference run supplies the proximity-event slices (the global
    // CEP stage is itself shard-count invariant, covered elsewhere).
    const IncrementalRun reference = RunIncremental(stream, 1, epoch_size);
    ASSERT_FALSE(reference.bytes.empty());

    std::string oracle_bytes;
    for (std::size_t i = 0, off = 0; off < stream.size();
         ++i, off += epoch_size) {
      const std::size_t n = std::min(epoch_size, stream.size() - off);
      oracle_bytes += EncodeBatches(oracle.EvalEpoch(
          std::span<const PositionReport>(stream.data() + off, n),
          reference.epoch_events[i], reference.epoch_close_ts[i]));
    }
    ASSERT_EQ(reference.bytes, oracle_bytes)
        << "oracle mismatch at epoch_size=" << epoch_size;

    for (const std::size_t shards :
         {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
      const IncrementalRun run = RunIncremental(stream, shards, epoch_size);
      EXPECT_EQ(run.bytes, reference.bytes)
          << "shards=" << shards << " epoch_size=" << epoch_size;
    }
  }
}

TEST(SubIdentityTest, SerialIngestIsTheEpochOfOneCase) {
  const std::vector<PositionReport> stream = SubStream(40);

  DatacronEngine engine({});
  RegisterMix([&](SubscriberId client, const SubscriptionSpec& spec) {
    return engine.subscriptions()->Subscribe(client, spec);
  });
  SubscriptionRegistry oracle_reg;
  RegisterMix([&](SubscriberId client, const SubscriptionSpec& spec) {
    return oracle_reg.Subscribe(client, spec);
  });
  SubscriptionOracle oracle(&oracle_reg);

  std::string engine_bytes;
  std::string oracle_bytes;
  for (const PositionReport& r : stream) {
    const std::vector<Event> events = engine.Ingest(r);
    engine_bytes += EncodeBatches(engine.subscriptions()->TakeBatches());
    oracle_bytes += EncodeBatches(
        oracle.EvalEpoch(std::span<const PositionReport>(&r, 1),
                         ProximityOnly(events), r.timestamp));
  }
  EXPECT_FALSE(engine_bytes.empty());
  EXPECT_EQ(engine_bytes, oracle_bytes);
}

// --- broker / client wire protocol ----------------------------------------

void ExerciseSubChannel(std::unique_ptr<Transport> server_side,
                        std::unique_ptr<Transport> client_side) {
  DatacronEngine engine({});
  SubscriptionBroker::Hooks hooks;
  hooks.subscribe = [&engine](SubscriberId client,
                              const SubscriptionSpec& spec) {
    return engine.subscriptions()->Subscribe(client, spec);
  };
  hooks.unsubscribe = [&engine](SubscriptionId id) {
    return engine.subscriptions()->Unsubscribe(id);
  };
  SubscriptionBroker broker(hooks);
  broker.Attach(7, std::move(server_side));
  engine.subscriptions()->SetDeltaSink(
      [&broker](const DeltaBatch& b) { broker.PushBatch(b); });

  SubscriberClient client(7, std::move(client_side));

  GeofenceSpec g;
  g.bbox = WatchBox();
  g.all_entities = true;
  ASSERT_TRUE(client.SendSubscribe(SubscriptionSpec::Geofence(g)).ok());
  ASSERT_TRUE(broker.HandleControl(7).ok());
  const Result<SubscriptionId> id = client.AwaitAck();
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  // An invalid predicate is rejected in-band; the channel survives.
  ASSERT_TRUE(
      client.SendSubscribe(SubscriptionSpec::Hotspot({WatchBox(), -1.0, 1}))
          .ok());
  ASSERT_TRUE(broker.HandleControl(7).ok());
  const Result<SubscriptionId> bad = client.AwaitAck();
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  // One report inside the fence: the epoch's coalesced enter arrives as a
  // kDeltaBatch push.
  engine.Ingest(ReportAt(3, 1000, 36.0, 25.0));
  const Result<DeltaBatch> batch = client.NextBatch();
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch.value().subscriber, 7u);
  ASSERT_EQ(batch.value().deltas.size(), 1u);
  EXPECT_EQ(batch.value().deltas[0].sub, id.value());
  EXPECT_EQ(batch.value().deltas[0].kind, DeltaKind::kEnter);
  EXPECT_EQ(batch.value().deltas[0].entity, 3u);

  // Unsubscribe is acked and stops the push stream.
  ASSERT_TRUE(client.SendUnsubscribe(id.value()).ok());
  ASSERT_TRUE(broker.HandleControl(7).ok());
  ASSERT_TRUE(client.AwaitAck().ok());
  engine.Ingest(ReportAt(3, 2000, 36.0, 25.01));
  EXPECT_EQ(broker.batches_pushed(), 1u);

  broker.CloseAll();
  EXPECT_FALSE(client.NextBatch().ok());
  client.Close();
}

TEST(SubChannelTest, BrokerAndClientOverLoopback) {
  auto [server_side, client_side] = LoopbackTransport::CreatePair();
  ExerciseSubChannel(std::move(server_side), std::move(client_side));
}

TEST(SubChannelTest, BrokerAndClientOverTcp) {
  Result<std::unique_ptr<TcpListener>> listener = TcpListener::Create();
  ASSERT_TRUE(listener.ok()) << listener.status().ToString();
  Result<std::unique_ptr<Transport>> client_side =
      TcpConnect(listener.value()->port());
  ASSERT_TRUE(client_side.ok()) << client_side.status().ToString();
  Result<std::unique_ptr<Transport>> server_side =
      listener.value()->Accept();
  ASSERT_TRUE(server_side.ok()) << server_side.status().ToString();
  ExerciseSubChannel(std::move(server_side).value(),
                     std::move(client_side).value());
}

// --- cluster leg ----------------------------------------------------------

/// Deltas of a fleet run: coordinator assigns the ids, nodes evaluate
/// their shards, the coordinator splices and coalesces per cluster epoch.
std::string RunClusterSubs(const std::vector<PositionReport>& stream,
                           std::size_t num_nodes, LocalCluster::Wire wire,
                           std::size_t epoch_size) {
  LocalCluster::Options opts;
  opts.engine.epoch_size = epoch_size;
  opts.num_nodes = num_nodes;
  opts.wire = wire;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(opts);
  EXPECT_TRUE(cluster.ok()) << cluster.status().ToString();
  if (!cluster.ok()) return {};

  RegisterMix([&](SubscriberId client, const SubscriptionSpec& spec) {
    return cluster.value()->engine().Subscribe(client, spec);
  });
  const Result<std::vector<Event>> events =
      cluster.value()->engine().IngestBatch(stream);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  const std::string bytes = EncodeBatches(
      cluster.value()->engine().subscriptions()->TakeBatches());
  const Status stop = cluster.value()->Stop();
  EXPECT_TRUE(stop.ok()) << stop.ToString();
  return bytes;
}

TEST(ClusterSubTest, ClusterDeltasMatchSingleEngineOverLoopbackAndTcp) {
  const std::vector<PositionReport> stream = SubStream();
  const std::size_t epoch_size = 64;

  DatacronEngine::Config cfg;
  cfg.epoch_size = epoch_size;
  DatacronEngine single(cfg);
  RegisterMix([&](SubscriberId client, const SubscriptionSpec& spec) {
    return single.subscriptions()->Subscribe(client, spec);
  });
  single.IngestBatch(stream, nullptr);
  const std::string expected =
      EncodeBatches(single.subscriptions()->TakeBatches());
  ASSERT_FALSE(expected.empty());

  EXPECT_EQ(RunClusterSubs(stream, 2, LocalCluster::Wire::kLoopback,
                           epoch_size),
            expected);
  EXPECT_EQ(RunClusterSubs(stream, 3, LocalCluster::Wire::kLoopback,
                           epoch_size),
            expected);
  EXPECT_EQ(RunClusterSubs(stream, 2, LocalCluster::Wire::kTcp, epoch_size),
            expected);
}

TEST(ClusterSubTest, FleetUnsubscribeStopsDeltasEverywhere) {
  const std::vector<PositionReport> stream = SubStream(40);

  LocalCluster::Options opts;
  opts.engine.epoch_size = 32;
  opts.num_nodes = 2;
  Result<std::unique_ptr<LocalCluster>> cluster = LocalCluster::Start(opts);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  ClusterEngine& engine = cluster.value()->engine();

  GeofenceSpec g;
  g.bbox = BoundingBox::Of(35.0, 23.5, 37.0, 26.5);
  g.all_entities = true;
  const Result<SubscriptionId> id =
      engine.Subscribe(5, SubscriptionSpec::Geofence(g));
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  ASSERT_TRUE(engine.IngestBatch(stream).ok());
  EXPECT_FALSE(engine.subscriptions()->TakeBatches().empty());

  ASSERT_TRUE(engine.Unsubscribe(id.value()).ok());
  EXPECT_EQ(engine.Unsubscribe(id.value()).code(),
            StatusCode::kInvalidArgument);

  std::vector<PositionReport> more = SubStream(40);
  for (PositionReport& r : more) r.timestamp += 40 * 30 * kSecond;
  ASSERT_TRUE(engine.IngestBatch(more).ok());
  EXPECT_TRUE(engine.subscriptions()->TakeBatches().empty());

  ASSERT_TRUE(cluster.value()->Stop().ok());
}

}  // namespace
}  // namespace datacron
