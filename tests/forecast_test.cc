#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "forecast/eval.h"
#include "forecast/kalman.h"
#include "forecast/kinematic.h"
#include "forecast/markov.h"
#include "forecast/route.h"
#include "sources/ais_generator.h"
#include "trajectory/trajectory_store.h"

namespace datacron {
namespace {

PositionReport Moving(EntityId id, TimestampMs t, const GeoPoint& pos,
                      double speed, double course) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = pos;
  r.speed_mps = speed;
  r.course_deg = course;
  return r;
}

/// Feeds a straight constant-velocity track; returns the last report.
PositionReport FeedStraight(Predictor* p, EntityId id, int n,
                            DurationMs dt, double speed, double course) {
  GeoPoint pos{36.5, 24.5, 0};
  PositionReport last;
  for (int i = 0; i < n; ++i) {
    last = Moving(id, i * dt, pos, speed, course);
    p->Observe(last);
    pos = DeadReckon(pos, course, speed, 0, dt / 1000.0);
  }
  return last;
}

// ---------------------------------------------------------- dead reckon

TEST(DeadReckoningPredictorTest, ExactOnStraightLine) {
  DeadReckoningPredictor p;
  const PositionReport last = FeedStraight(&p, 1, 10, 10000, 8.0, 77.0);
  GeoPoint predicted;
  ASSERT_TRUE(p.Predict(1, 5 * kMinute, &predicted));
  const GeoPoint expected =
      DeadReckon(last.position, 77.0, 8.0, 0, 300.0);
  EXPECT_NEAR(HaversineMeters(predicted.ll(), expected.ll()), 0, 0.5);
}

TEST(DeadReckoningPredictorTest, UnknownEntityFails) {
  DeadReckoningPredictor p;
  GeoPoint out;
  EXPECT_FALSE(p.Predict(42, kMinute, &out));
}

// ---------------------------------------------------------- CTRV

TEST(CtrvPredictorTest, TracksConstantTurn) {
  // Entity turning at a steady 0.5 deg/s.
  CtrvPredictor ctrv;
  DeadReckoningPredictor dr;
  GeoPoint pos{36.5, 24.5, 0};
  double course = 0.0;
  const double speed = 10.0;
  const DurationMs dt = 10 * kSecond;
  for (int i = 0; i < 60; ++i) {
    const auto r = Moving(1, i * dt, pos, speed, course);
    ctrv.Observe(r);
    dr.Observe(r);
    pos = DeadReckon(pos, course, speed, 0, dt / 1000.0);
    course = std::fmod(course + 0.5 * dt / 1000.0, 360.0);
  }
  // Ground truth continuation for 5 more minutes of the same turn.
  GeoPoint truth = pos;
  double tc = course;
  for (int s = 0; s < 30; ++s) {
    truth = DeadReckon(truth, tc, speed, 0, 10.0);
    tc = std::fmod(tc + 5.0, 360.0);
  }
  GeoPoint ctrv_pred, dr_pred;
  ASSERT_TRUE(ctrv.Predict(1, 5 * kMinute, &ctrv_pred));
  ASSERT_TRUE(dr.Predict(1, 5 * kMinute, &dr_pred));
  const double ctrv_err = HaversineMeters(ctrv_pred.ll(), truth.ll());
  const double dr_err = HaversineMeters(dr_pred.ll(), truth.ll());
  EXPECT_LT(ctrv_err, dr_err * 0.5)
      << "ctrv=" << ctrv_err << " dr=" << dr_err;
}

TEST(CtrvPredictorTest, StraightLineDegradesToDeadReckoning) {
  CtrvPredictor ctrv;
  DeadReckoningPredictor dr;
  FeedStraight(&ctrv, 1, 20, 10000, 8.0, 45.0);
  FeedStraight(&dr, 1, 20, 10000, 8.0, 45.0);
  GeoPoint a, b;
  ASSERT_TRUE(ctrv.Predict(1, 10 * kMinute, &a));
  ASSERT_TRUE(dr.Predict(1, 10 * kMinute, &b));
  EXPECT_LT(HaversineMeters(a.ll(), b.ll()), 50.0);
}

// ---------------------------------------------------------- Kalman

TEST(KalmanPredictorTest, ConvergesOnNoisyStraightTrack) {
  KalmanPredictor::Config cfg;
  KalmanPredictor kalman(cfg);
  Rng rng(4242);
  GeoPoint pos{36.5, 24.5, 0};
  const double speed = 10.0, course = 90.0;
  PositionReport last;
  for (int i = 0; i < 120; ++i) {
    PositionReport r = Moving(1, i * 10000, pos, speed, course);
    // Noise on position & velocity measurements.
    const LatLon noisy = DestinationPoint(
        r.position.ll(), rng.Uniform(0, 360),
        std::fabs(rng.Gaussian(0, 15)));
    r.position.lat_deg = noisy.lat_deg;
    r.position.lon_deg = noisy.lon_deg;
    r.speed_mps = std::max(0.0, speed + rng.Gaussian(0, 0.5));
    r.course_deg = course + rng.Gaussian(0, 3);
    kalman.Observe(r);
    last = r;
    pos = DeadReckon(pos, course, speed, 0, 10.0);
  }
  // Filtered estimate should be closer to truth than the last raw fix.
  GeoPoint est;
  double ve, vn;
  ASSERT_TRUE(kalman.CurrentEstimate(1, &est, &ve, &vn));
  EXPECT_NEAR(ve, 10.0, 0.8);  // eastbound
  EXPECT_NEAR(vn, 0.0, 0.8);
  // True current position is `pos` rewound one step.
  const GeoPoint truth = DeadReckon(pos, course, -speed, 0, 10.0);
  const double est_err = HaversineMeters(est.ll(), truth.ll());
  EXPECT_LT(est_err, 25.0);
}

TEST(KalmanPredictorTest, PredictionPropagatesVelocity) {
  KalmanPredictor kalman;
  const PositionReport last = FeedStraight(&kalman, 1, 60, 10000, 8.0, 0.0);
  GeoPoint pred;
  ASSERT_TRUE(kalman.Predict(1, 10 * kMinute, &pred));
  const GeoPoint expected = DeadReckon(last.position, 0.0, 8.0, 0, 600.0);
  EXPECT_LT(HaversineMeters(pred.ll(), expected.ll()), 100.0);
}

TEST(KalmanPredictorTest, AviationAltitudeTracked) {
  KalmanPredictor kalman;
  GeoPoint pos{45, 10, 5000};
  for (int i = 0; i < 30; ++i) {
    PositionReport r = Moving(7, i * 5000, pos, 200, 90);
    r.domain = Domain::kAviation;
    r.vertical_rate_mps = 10;
    kalman.Observe(r);
    pos = DeadReckon(pos, 90, 200, 10, 5.0);
  }
  GeoPoint pred;
  ASSERT_TRUE(kalman.Predict(7, kMinute, &pred));
  // Altitude after 1 min of +10 m/s climb from current ~6450 m.
  EXPECT_NEAR(pred.alt_m, pos.alt_m + 600 - 50, 120);
}

TEST(KalmanPredictorTest, UnknownEntityFails) {
  KalmanPredictor kalman;
  GeoPoint out;
  EXPECT_FALSE(kalman.Predict(9, kMinute, &out));
}

// ---------------------------------------------------------- Markov

TEST(MarkovGridPredictorTest, LearnsLaneAndFollowsIt) {
  // History: many entities travel an L-shaped lane (east, then north).
  MarkovGridPredictor::Config cfg;
  cfg.cell_deg = 0.02;
  cfg.min_transition_count = 2;
  MarkovGridPredictor markov(cfg);
  std::vector<PositionReport> history;
  for (int run = 0; run < 10; ++run) {
    GeoPoint pos{36.5, 24.0, 0};
    TimestampMs t = 0;
    double course = 90;
    for (int i = 0; i < 400; ++i) {
      history.push_back(
          Moving(100 + run, t, pos, 10, course));
      // Turn north at lon >= 24.5.
      course = pos.lon_deg >= 24.5 ? 0.0 : 90.0;
      pos = DeadReckon(pos, course, 10, 0, 30.0);
      t += 30 * kSecond;
    }
  }
  markov.Train(history);
  EXPECT_GT(markov.TransitionCount(), 10u);

  // A fresh entity currently heading east, just before the corner. The
  // lane's latitude sits a hair under 36.5 (great-circle eastbound steps
  // drift south), so the probe uses 36.49 to share the lane's cell row.
  markov.Observe(Moving(1, 0, {36.49, 24.45, 0}, 10, 90));
  GeoPoint pred;
  // Horizon long enough to pass the corner: ~1.2h at 10 m/s covers ~43km;
  // corner is ~4.4km ahead. Use 60 min -> 36 km: mostly northbound.
  ASSERT_TRUE(markov.Predict(1, 60 * kMinute, &pred));
  // Dead reckoning would put it far east (lon ~24.85); the lane turns
  // north so the markov prediction should have turned (lat rises).
  EXPECT_GT(pred.lat_deg, 36.6);
  EXPECT_LT(pred.lon_deg, 24.7);
}

TEST(MarkovGridPredictorTest, FallsBackToDeadReckoningUntrained) {
  MarkovGridPredictor markov;
  markov.Observe(Moving(1, 0, {36.5, 24.5, 0}, 10, 90));
  GeoPoint pred;
  ASSERT_TRUE(markov.Predict(1, 10 * kMinute, &pred));
  const GeoPoint dr = DeadReckon({36.5, 24.5, 0}, 90, 10, 0, 600);
  EXPECT_LT(HaversineMeters(pred.ll(), dr.ll()), 3000.0);
}

// ---------------------------------------------------------- route

TEST(RoutePredictorTest, FollowsMatchedRoute) {
  // One historical route: straight east at lat 36.5 for ~36 km.
  Trajectory route;
  route.entity_id = 500;
  GeoPoint pos{36.5, 24.0, 0};
  for (int i = 0; i < 120; ++i) {
    route.points.push_back(Moving(500, i * 30000, pos, 10, 90));
    pos = DeadReckon(pos, 90, 10, 0, 30.0);
  }
  RoutePredictor::Config cfg;
  RoutePredictor rp(cfg);
  rp.Train({route});
  EXPECT_EQ(rp.MedoidCount(), 1u);

  rp.Observe(Moving(1, 0, {36.502, 24.1, 0}, 10, 88));
  GeoPoint pred;
  ASSERT_TRUE(rp.Predict(1, 20 * kMinute, &pred));
  // 12 km east along the route.
  const GeoPoint expected = DeadReckon({36.5, 24.1, 0}, 90, 10, 0, 1200);
  EXPECT_LT(HaversineMeters(pred.ll(), expected.ll()), 2500.0);
}

TEST(RoutePredictorTest, OffRouteFallsBackToDeadReckoning) {
  RoutePredictor rp;
  rp.Train({});  // no routes at all
  rp.Observe(Moving(1, 0, {36.5, 24.5, 0}, 10, 45));
  GeoPoint pred;
  ASSERT_TRUE(rp.Predict(1, 10 * kMinute, &pred));
  const GeoPoint dr = DeadReckon({36.5, 24.5, 0}, 45, 10, 0, 600);
  EXPECT_LT(HaversineMeters(pred.ll(), dr.ll()), 1.0);
}

TEST(RoutePredictorTest, CourseMismatchIgnoresRoute) {
  Trajectory route;
  route.entity_id = 500;
  GeoPoint pos{36.5, 24.0, 0};
  for (int i = 0; i < 60; ++i) {
    route.points.push_back(Moving(500, i * 30000, pos, 10, 90));
    pos = DeadReckon(pos, 90, 10, 0, 30.0);
  }
  RoutePredictor rp;
  rp.Train({route});
  // Entity on the route but heading SOUTH (course 180): no match.
  rp.Observe(Moving(1, 0, {36.5, 24.1, 0}, 10, 180));
  GeoPoint pred;
  ASSERT_TRUE(rp.Predict(1, 10 * kMinute, &pred));
  const GeoPoint dr = DeadReckon({36.5, 24.1, 0}, 180, 10, 0, 600);
  EXPECT_LT(HaversineMeters(pred.ll(), dr.ll()), 1.0);
}

// ---------------------------------------------------------- harness

TEST(ForecastEvalTest, ErrorGrowsWithHorizonForDeadReckoning) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 6;
  fleet.duration = kHour;
  const auto traces = GenerateAisFleet(fleet);
  ForecastEvalConfig cfg;
  cfg.horizons = {kMinute, 5 * kMinute, 15 * kMinute};
  cfg.warmup = 2 * kMinute;
  DeadReckoningPredictor dr;
  const auto eval = EvaluatePredictor(&dr, traces, cfg);
  ASSERT_EQ(eval.horizons.size(), 3u);
  for (const auto& h : eval.horizons) {
    EXPECT_GT(h.predictions, 0u);
  }
  EXPECT_LT(eval.horizons[0].error_m.mean(),
            eval.horizons[1].error_m.mean());
  EXPECT_LT(eval.horizons[1].error_m.mean(),
            eval.horizons[2].error_m.mean());
  EXPECT_FALSE(eval.ToTable().empty());
}

TEST(ForecastEvalTest, ShortHorizonErrorIsSmall) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = 5;
  fleet.duration = 40 * kMinute;
  const auto traces = GenerateAisFleet(fleet);
  ForecastEvalConfig cfg;
  cfg.horizons = {30 * kSecond};
  DeadReckoningPredictor dr;
  const auto eval = EvaluatePredictor(&dr, traces, cfg);
  // 30 s at <= 11 m/s: error well under 500 m even with noise.
  EXPECT_LT(eval.horizons[0].error_m.mean(), 500.0);
}

}  // namespace
}  // namespace datacron
