#include <gtest/gtest.h>

#include "viz/svg.h"

namespace datacron {
namespace {

const BoundingBox kRegion = BoundingBox::Of(36, 24, 37, 25);

Trajectory Line(EntityId id) {
  Trajectory t;
  t.entity_id = id;
  for (int i = 0; i < 5; ++i) {
    PositionReport r;
    r.entity_id = id;
    r.timestamp = i * 60000;
    r.position = {36.2 + i * 0.1, 24.2 + i * 0.1, 0};
    t.points.push_back(r);
  }
  return t;
}

TEST(SvgMapTest, DocumentStructure) {
  SvgMap map(kRegion, 800, 400);
  map.AddTrajectory(Line(1));
  const std::string doc = map.Render();
  EXPECT_EQ(doc.find("<svg"), 0u);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("width=\"800\""), std::string::npos);
  EXPECT_NE(doc.find("<polyline"), std::string::npos);
}

TEST(SvgMapTest, NorthIsUp) {
  SvgMap map(kRegion, 100, 100);
  // A point at the region's north edge must project to y ~ 0.
  Trajectory north;
  north.entity_id = 1;
  for (int i = 0; i < 2; ++i) {
    PositionReport r;
    r.position = {36.99, 24.2 + i * 0.1, 0};
    north.points.push_back(r);
  }
  map.AddTrajectory(north);
  const std::string doc = map.Render();
  // y coordinate of the polyline points should be ~1.0 (north at top).
  EXPECT_NE(doc.find(",1.0"), std::string::npos);
}

TEST(SvgMapTest, EventAndAreaLayers) {
  SvgMap map(kRegion);
  Event e;
  e.kind = EventKind::kCollisionForecast;
  e.position = {36.5, 24.5, 0};
  map.AddEvent(e);
  map.AddArea(NamedArea{
      "zone", Polygon::Rectangle(BoundingBox::Of(36.2, 24.2, 36.4, 24.4))});
  const std::string doc = map.Render();
  EXPECT_NE(doc.find("<circle"), std::string::npos);
  EXPECT_NE(doc.find("<polygon"), std::string::npos);
  EXPECT_NE(doc.find("#d62728"), std::string::npos);  // collision color
  EXPECT_NE(doc.find("<title>zone</title>"), std::string::npos);
}

TEST(SvgMapTest, DistinctEntitiesDistinctColors) {
  SvgMap map(kRegion);
  map.AddTrajectory(Line(1));
  map.AddTrajectory(Line(2));
  const std::string doc = map.Render();
  // Two different hsl() strokes.
  const std::size_t first = doc.find("hsl(");
  const std::size_t second = doc.find("hsl(", first + 1);
  ASSERT_NE(second, std::string::npos);
  EXPECT_NE(doc.substr(first, 12), doc.substr(second, 12));
}

TEST(SvgMapTest, SinglePointTrajectorySkipped) {
  SvgMap map(kRegion);
  Trajectory t;
  t.entity_id = 1;
  t.points.resize(1);
  map.AddTrajectory(t);
  EXPECT_EQ(map.Render().find("<polyline"), std::string::npos);
}

}  // namespace
}  // namespace datacron
