#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <map>

#include "common/rng.h"
#include "geo/geo.h"
#include "sources/ais_generator.h"
#include "stream/pipeline.h"
#include "synopses/compression.h"
#include "synopses/critical_points.h"

namespace datacron {
namespace {

PositionReport MakeReport(EntityId id, TimestampMs t, double lat, double lon,
                          double speed_mps, double course_deg) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = {lat, lon, 0};
  r.speed_mps = speed_mps;
  r.course_deg = course_deg;
  return r;
}

/// A straight constant-speed run of `n` reports every `dt` ms.
std::vector<PositionReport> StraightRun(EntityId id, int n, DurationMs dt,
                                        double speed_mps,
                                        double course_deg) {
  std::vector<PositionReport> out;
  GeoPoint pos{37.0, 24.0, 0};
  for (int i = 0; i < n; ++i) {
    PositionReport r = MakeReport(id, i * dt, pos.lat_deg, pos.lon_deg,
                                  speed_mps, course_deg);
    out.push_back(r);
    pos = DeadReckon(pos, course_deg, speed_mps, 0, dt / 1000.0);
  }
  return out;
}

// ----------------------------------------------------- critical points

TEST(CriticalPointTest, FirstReportIsTrajectoryStart) {
  CriticalPointDetector det;
  std::vector<CriticalPoint> out;
  det.ProcessCounted(MakeReport(1, 0, 37, 24, 5, 90), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].type, CriticalPointType::kTrajectoryStart);
}

TEST(CriticalPointTest, StraightRunEmitsAlmostNothing) {
  CriticalPointDetector det;
  const auto run = StraightRun(1, 200, 10 * kSecond, 8.0, 45.0);
  const auto cps = pipeline::RunBatch(&det, run);
  // Start + end + at most a few heartbeats: huge compression.
  EXPECT_LE(cps.size(), 6u);
}

TEST(CriticalPointTest, TurnEmitsTurningPoint) {
  CriticalPointDetector det;
  std::vector<CriticalPoint> out;
  auto run = StraightRun(1, 20, 10 * kSecond, 8.0, 45.0);
  for (const auto& r : run) det.ProcessCounted(r, &out);
  // Now turn hard.
  PositionReport turn = run.back();
  turn.timestamp += 10 * kSecond;
  turn.course_deg = 80.0;
  det.ProcessCounted(turn, &out);
  bool found = false;
  for (const auto& cp : out) {
    if (cp.type == CriticalPointType::kTurningPoint) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CriticalPointTest, StopStartAndEnd) {
  CriticalPointDetector det;
  std::vector<CriticalPoint> out;
  det.ProcessCounted(MakeReport(1, 0, 37, 24, 6, 0), &out);
  det.ProcessCounted(MakeReport(1, 10000, 37.001, 24, 0.1, 0), &out);
  det.ProcessCounted(MakeReport(1, 20000, 37.001, 24, 0.1, 0), &out);
  det.ProcessCounted(MakeReport(1, 30000, 37.001, 24, 5.0, 0), &out);
  std::map<CriticalPointType, int> counts;
  for (const auto& cp : out) counts[cp.type]++;
  EXPECT_EQ(counts[CriticalPointType::kStopStart], 1);
  EXPECT_EQ(counts[CriticalPointType::kStopEnd], 1);
}

TEST(CriticalPointTest, GapEmitsGapStartAndEnd) {
  CriticalPointDetector det;
  std::vector<CriticalPoint> out;
  det.ProcessCounted(MakeReport(1, 0, 37, 24, 6, 0), &out);
  det.ProcessCounted(MakeReport(1, 10 * kSecond, 37.001, 24, 6, 0), &out);
  det.ProcessCounted(MakeReport(1, 30 * kMinute, 37.05, 24, 6, 0), &out);
  std::map<CriticalPointType, int> counts;
  for (const auto& cp : out) counts[cp.type]++;
  EXPECT_EQ(counts[CriticalPointType::kGapStart], 1);
  EXPECT_EQ(counts[CriticalPointType::kGapEnd], 1);
}

TEST(CriticalPointTest, SpeedChangeDetected) {
  CriticalPointDetector det;
  std::vector<CriticalPoint> out;
  det.ProcessCounted(MakeReport(1, 0, 37, 24, 8.0, 0), &out);
  det.ProcessCounted(MakeReport(1, 10000, 37.001, 24, 8.1, 0), &out);
  det.ProcessCounted(MakeReport(1, 20000, 37.002, 24, 12.0, 0), &out);
  bool found = false;
  for (const auto& cp : out) {
    if (cp.type == CriticalPointType::kSpeedChange) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CriticalPointTest, FlushEmitsTrajectoryEnd) {
  CriticalPointDetector det;
  std::vector<CriticalPoint> out;
  det.ProcessCounted(MakeReport(1, 0, 37, 24, 5, 0), &out);
  det.ProcessCounted(MakeReport(2, 0, 38, 25, 5, 0), &out);
  det.Flush(&out);
  int ends = 0;
  for (const auto& cp : out) {
    if (cp.type == CriticalPointType::kTrajectoryEnd) ++ends;
  }
  EXPECT_EQ(ends, 2);
  EXPECT_EQ(det.TrackedEntities(), 0u);
}

TEST(CriticalPointTest, EveryTypeHasName) {
  for (int i = 0; i <= static_cast<int>(CriticalPointType::kTrajectoryEnd);
       ++i) {
    EXPECT_STRNE(CriticalPointTypeName(static_cast<CriticalPointType>(i)),
                 "?");
  }
}

// ----------------------------------------------------- DR compressor

TEST(DeadReckoningCompressorTest, StraightLineKeepsAlmostNothing) {
  DeadReckoningCompressor comp(50.0);
  const auto run = StraightRun(1, 500, 5 * kSecond, 8.0, 90.0);
  const auto kept = pipeline::RunBatch(&comp, run);
  EXPECT_LE(kept.size(), 10u);  // >50x compression on a straight run
}

TEST(DeadReckoningCompressorTest, FirstAndLastKept) {
  DeadReckoningCompressor comp(50.0);
  const auto run = StraightRun(7, 100, 5 * kSecond, 8.0, 90.0);
  const auto kept = pipeline::RunBatch(&comp, run);
  ASSERT_GE(kept.size(), 2u);
  EXPECT_EQ(kept.front().timestamp, run.front().timestamp);
  EXPECT_EQ(kept.back().timestamp, run.back().timestamp);
}

class DrCompressorErrorBoundTest : public ::testing::TestWithParam<double> {
};

TEST_P(DrCompressorErrorBoundTest, RealFleetRespectsThresholdScale) {
  // On realistic manoeuvring traffic, reconstruction error stays within a
  // small multiple of the threshold (kept points bound deviation at kept
  // timestamps; interpolation between them adds bounded slack).
  const double threshold = GetParam();
  AisGeneratorConfig cfg;
  cfg.num_vessels = 4;
  cfg.duration = kHour;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  obs.position_noise_m = 0;
  obs.drop_probability = 0;
  obs.gap_probability = 0;
  obs.fixed_interval_ms = 10 * kSecond;
  for (const auto& trace : traces) {
    DeadReckoningCompressor comp(threshold);
    const auto reports = Observe(trace, obs);
    const auto kept = pipeline::RunBatch(&comp, reports);
    EXPECT_LT(kept.size(), reports.size());
    const CompressionQuality q = EvaluateCompression(reports, kept);
    EXPECT_LE(q.max_sed_m, threshold * 3 + 50)
        << "threshold=" << threshold;
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, DrCompressorErrorBoundTest,
                         ::testing::Values(20.0, 50.0, 100.0, 200.0, 500.0));

TEST(DeadReckoningCompressorTest, HigherThresholdCompressesMore) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 5;
  cfg.duration = kHour;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  obs.gap_probability = 0;
  obs.drop_probability = 0;
  const auto reports = ObserveFleet(traces, obs);
  DeadReckoningCompressor tight(20.0), loose(500.0);
  const auto kept_tight = pipeline::RunBatch(&tight, reports);
  const auto kept_loose = pipeline::RunBatch(&loose, reports);
  EXPECT_GT(kept_tight.size(), kept_loose.size());
}

// ----------------------------------------------------- Douglas-Peucker

TEST(DouglasPeuckerTest, CollinearPointsCollapse) {
  const auto run = StraightRun(1, 50, 10 * kSecond, 8.0, 0.0);
  const auto kept = DouglasPeucker(run, 10.0);
  EXPECT_LE(kept.size(), 3u);
  EXPECT_EQ(kept.front().timestamp, run.front().timestamp);
  EXPECT_EQ(kept.back().timestamp, run.back().timestamp);
}

TEST(DouglasPeuckerTest, CornerIsKept) {
  auto leg1 = StraightRun(1, 20, 10 * kSecond, 8.0, 0.0);
  // Second leg heads east from the end of leg1.
  std::vector<PositionReport> run = leg1;
  GeoPoint pos = leg1.back().position;
  for (int i = 1; i <= 20; ++i) {
    pos = DeadReckon(pos, 90.0, 8.0, 0, 10.0);
    run.push_back(MakeReport(1, leg1.back().timestamp + i * 10 * kSecond,
                             pos.lat_deg, pos.lon_deg, 8.0, 90.0));
  }
  const auto kept = DouglasPeucker(run, 30.0);
  ASSERT_GE(kept.size(), 3u);
  // The corner (end of leg1) must be among the kept points.
  bool corner_kept = false;
  for (const auto& k : kept) {
    if (k.timestamp == leg1.back().timestamp) corner_kept = true;
  }
  EXPECT_TRUE(corner_kept);
}

TEST(DouglasPeuckerSedTest, CatchesTemporalDeviation) {
  // A vessel accelerating along a straight line: spatially collinear
  // (plain DP keeps only the endpoints) but its timing deviates from
  // uniform motion, which only SED can see.
  std::vector<PositionReport> run;
  for (int i = 0; i <= 20; ++i) {
    const double f = (i / 20.0) * (i / 20.0);  // quadratic progress
    run.push_back(
        MakeReport(1, i * 60 * kSecond, 37.0 + 0.2 * f, 24.0, 8.0, 0));
  }
  const auto plain = DouglasPeucker(run, 50.0);
  const auto sed = DouglasPeuckerSed(run, 50.0);
  EXPECT_EQ(plain.size(), 2u);  // spatially a line: endpoints only
  EXPECT_GT(sed.size(), 2u);    // kinematics require interior points
}

TEST(SedMetersTest, MidpointOfUniformMotionIsZero) {
  const auto a = MakeReport(1, 0, 37.0, 24.0, 8, 0);
  const auto b = MakeReport(1, 100000, 37.1, 24.0, 8, 0);
  const auto mid = MakeReport(1, 50000, 37.05, 24.0, 8, 0);
  EXPECT_NEAR(SedMeters(a, b, mid), 0.0, 0.5);
  const auto off = MakeReport(1, 50000, 37.08, 24.0, 8, 0);
  EXPECT_GT(SedMeters(a, b, off), 3000);
}

// ----------------------------------------------------- quality metrics

TEST(CompressionQualityTest, IdentityHasZeroError) {
  const auto run = StraightRun(1, 50, 10 * kSecond, 8.0, 30.0);
  const CompressionQuality q = EvaluateCompression(run, run);
  EXPECT_NEAR(q.max_sed_m, 0.0, 1e-6);
  EXPECT_DOUBLE_EQ(q.CompressionRatio(), 1.0);
}

TEST(InterpolateAtTest, ClampsAndInterpolates) {
  const auto run = StraightRun(1, 10, 10 * kSecond, 8.0, 0.0);
  GeoPoint p;
  ASSERT_TRUE(InterpolateAt(run, -5000, &p));
  EXPECT_DOUBLE_EQ(p.lat_deg, run.front().position.lat_deg);
  ASSERT_TRUE(InterpolateAt(run, run.back().timestamp + 5000, &p));
  EXPECT_DOUBLE_EQ(p.lat_deg, run.back().position.lat_deg);
  ASSERT_TRUE(InterpolateAt(run, 45 * kSecond, &p));
  EXPECT_GT(p.lat_deg, run[4].position.lat_deg);
  EXPECT_LT(p.lat_deg, run[5].position.lat_deg);
}

TEST(InterpolateAtTest, EmptyFails) {
  GeoPoint p;
  EXPECT_FALSE(InterpolateAt({}, 0, &p));
}

// ----------------------------------------- iterative DP vs reference

/// The legacy recursive skeleton, reproduced here as the reference the
/// explicit-stack production form must match. `dist(points[i], first,
/// last)` scores one interior point.
template <typename DistFn>
std::vector<PositionReport> RecursiveDpReference(
    const std::vector<PositionReport>& points, double epsilon,
    const DistFn& dist) {
  if (points.size() <= 2) return points;
  std::vector<bool> keep(points.size(), false);
  keep.front() = true;
  keep.back() = true;
  std::function<void(std::size_t, std::size_t)> simplify =
      [&](std::size_t first, std::size_t last) {
        if (last <= first + 1) return;
        double worst = -1.0;
        std::size_t worst_idx = first;
        for (std::size_t i = first + 1; i < last; ++i) {
          const double d = dist(i, first, last);
          if (d > worst) {
            worst = d;
            worst_idx = i;
          }
        }
        if (worst > epsilon) {
          keep[worst_idx] = true;
          simplify(first, worst_idx);
          simplify(worst_idx, last);
        }
      };
  simplify(0, points.size() - 1);
  std::vector<PositionReport> out;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (keep[i]) out.push_back(points[i]);
  }
  return out;
}

std::vector<PositionReport> RandomTrack(Rng* rng, int n) {
  std::vector<PositionReport> out;
  GeoPoint pos{rng->Uniform(35, 39), rng->Uniform(22, 27), 0};
  double course = rng->Uniform(0, 360);
  for (int i = 0; i < n; ++i) {
    out.push_back(MakeReport(1, i * 10 * kSecond, pos.lat_deg, pos.lon_deg,
                             8.0, course));
    course += rng->Uniform(-25, 25);
    pos = DeadReckon(pos, course, rng->Uniform(2, 14), 0, 10.0);
  }
  return out;
}

class DpIterativeEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(DpIterativeEquivalenceTest, MatchesRecursiveReferenceExactly) {
  Rng rng(18000 + GetParam());
  const int n = static_cast<int>(rng.UniformInt(3, 200));
  const auto track = RandomTrack(&rng, n);
  const double eps = rng.Uniform(5, 500);
  // Perpendicular DP is the bit-identical kernel class, so the kept
  // sets must match the legacy recursion point for point.
  const auto got = DouglasPeucker(track, eps);
  const auto want = RecursiveDpReference(
      track, eps, [&](std::size_t i, std::size_t f, std::size_t l) {
        return PointToSegmentMeters(track[i].position.ll(),
                                    track[f].position.ll(),
                                    track[l].position.ll());
      });
  ASSERT_EQ(got.size(), want.size()) << "n=" << n << " eps=" << eps;
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].timestamp, want[i].timestamp);
  }
  // SED DP uses the ULP-bound haversine kernel; with these margins the
  // randomized deviations never sit within 1e-13-relative of epsilon,
  // so the kept sets still match the libm reference exactly.
  const auto got_sed = DouglasPeuckerSed(track, eps);
  const auto want_sed = RecursiveDpReference(
      track, eps, [&](std::size_t i, std::size_t f, std::size_t l) {
        return SedMeters(track[f], track[l], track[i]);
      });
  ASSERT_EQ(got_sed.size(), want_sed.size()) << "n=" << n << " eps=" << eps;
  for (std::size_t i = 0; i < got_sed.size(); ++i) {
    EXPECT_EQ(got_sed[i].timestamp, want_sed[i].timestamp);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DpIterativeEquivalenceTest,
                         ::testing::Range(0, 30));

TEST(DouglasPeuckerTest, AdversarialDepthTrackCompletes) {
  // A sawtooth with amplitude growing toward the end forces the worst
  // point to sit next to the segment tail, so the old recursion went
  // ~n/2 frames deep — enough to overflow a thread stack on long
  // tracks. The explicit-stack form must simplify it fine.
  const int n = 20000;
  std::vector<PositionReport> run;
  run.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double amp = (i % 2 == 1) ? 1e-4 * (1.0 + i * 1e-3) : 0.0;
    run.push_back(
        MakeReport(1, i * kSecond, 37.0 + amp, 24.0 + i * 1e-5, 8.0, 90.0));
  }
  const auto kept = DouglasPeucker(run, 0.5);
  EXPECT_EQ(kept.front().timestamp, run.front().timestamp);
  EXPECT_EQ(kept.back().timestamp, run.back().timestamp);
  // Every tooth deviates far beyond epsilon, so most points survive.
  EXPECT_GT(kept.size(), static_cast<std::size_t>(n) / 2);
}

}  // namespace
}  // namespace datacron
