// Property-style parameterized sweeps over the geospatial substrate:
// inverses, bijections, and agreement with brute force — plus the SIMD
// kernel contracts: native-vs-scalar lane bit-equality at every batch
// length (including remainder tails), bit-identity of the gate-feeding
// kernels against the legacy scalar functions, and the documented ulp
// bounds of the polynomial-trig distance kernels.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/bbox.h"
#include "geo/curves.h"
#include "geo/geo.h"
#include "geo/kernels.h"

namespace datacron {
namespace {

// ---------------------------------------------------- destination/bearing

class DestinationInverseTest : public ::testing::TestWithParam<int> {};

TEST_P(DestinationInverseTest, BearingAndDistanceRecovered) {
  Rng rng(1000 + GetParam());
  const LatLon origin{rng.Uniform(-60, 60), rng.Uniform(-170, 170)};
  const double bearing = rng.Uniform(0, 360);
  const double dist = rng.Uniform(100, 200000);
  const LatLon dest = DestinationPoint(origin, bearing, dist);
  EXPECT_NEAR(HaversineMeters(origin, dest), dist, dist * 1e-6 + 0.01);
  // Initial bearing matches except near the poles where it degenerates.
  if (std::fabs(origin.lat_deg) < 75) {
    const double back = InitialBearingDeg(origin, dest);
    EXPECT_NEAR(CourseDifferenceDeg(back, bearing), 0.0, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DestinationInverseTest,
                         ::testing::Range(0, 50));

// ---------------------------------------------------- triangle inequality

class TriangleInequalityTest : public ::testing::TestWithParam<int> {};

TEST_P(TriangleInequalityTest, HaversineSatisfiesTriangle) {
  Rng rng(2000 + GetParam());
  const LatLon a{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
  const LatLon b{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
  const LatLon c{rng.Uniform(-80, 80), rng.Uniform(-179, 179)};
  EXPECT_LE(HaversineMeters(a, c),
            HaversineMeters(a, b) + HaversineMeters(b, c) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Sweep, TriangleInequalityTest,
                         ::testing::Range(0, 50));

// ---------------------------------------------------- ENU round trip

class EnuRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(EnuRoundTripTest, FromEnuInvertsToEnu) {
  Rng rng(3000 + GetParam());
  const GeoPoint ref{rng.Uniform(-70, 70), rng.Uniform(-170, 170),
                     rng.Uniform(0, 10000)};
  const GeoPoint p{ref.lat_deg + rng.Uniform(-0.5, 0.5),
                   ref.lon_deg + rng.Uniform(-0.5, 0.5),
                   ref.alt_m + rng.Uniform(-1000, 1000)};
  const GeoPoint back = FromEnu(ref, ToEnu(ref, p));
  EXPECT_NEAR(back.lat_deg, p.lat_deg, 1e-9);
  EXPECT_NEAR(back.lon_deg, p.lon_deg, 1e-9);
  EXPECT_NEAR(back.alt_m, p.alt_m, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, EnuRoundTripTest, ::testing::Range(0, 50));

// ---------------------------------------------------- Morton bijection

class MortonTest : public ::testing::TestWithParam<int> {};

TEST_P(MortonTest, EncodeDecodeBijective) {
  Rng rng(4000 + GetParam());
  const std::uint32_t x = static_cast<std::uint32_t>(rng.NextUint64());
  const std::uint32_t y = static_cast<std::uint32_t>(rng.NextUint64());
  std::uint32_t dx = 0, dy = 0;
  MortonDecode(MortonEncode(x, y), &dx, &dy);
  EXPECT_EQ(dx, x);
  EXPECT_EQ(dy, y);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MortonTest, ::testing::Range(0, 50));

TEST(MortonTest, KnownValues) {
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
  EXPECT_EQ(MortonEncode(2, 2), 12u);
}

// ---------------------------------------------------- Hilbert properties

class HilbertBijectionTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertBijectionTest, EncodeDecodeBijective) {
  const int order = 6;  // 64x64 grid
  Rng rng(5000 + GetParam());
  const std::uint32_t n = 1u << order;
  const std::uint32_t x = static_cast<std::uint32_t>(rng.UniformInt(0, n - 1));
  const std::uint32_t y = static_cast<std::uint32_t>(rng.UniformInt(0, n - 1));
  std::uint32_t dx = 0, dy = 0;
  HilbertDecode(order, HilbertEncode(order, x, y), &dx, &dy);
  EXPECT_EQ(dx, x);
  EXPECT_EQ(dy, y);
}

INSTANTIATE_TEST_SUITE_P(Sweep, HilbertBijectionTest,
                         ::testing::Range(0, 100));

TEST(HilbertTest, CurveIsContinuous) {
  // Consecutive Hilbert indices map to 4-adjacent cells — the locality
  // property the partitioner relies on.
  const int order = 5;
  const std::uint32_t n = 1u << order;
  std::uint32_t px = 0, py = 0;
  HilbertDecode(order, 0, &px, &py);
  for (std::uint64_t d = 1; d < static_cast<std::uint64_t>(n) * n; ++d) {
    std::uint32_t x = 0, y = 0;
    HilbertDecode(order, d, &x, &y);
    const std::uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    EXPECT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, CoversAllCellsExactlyOnce) {
  const int order = 4;
  const std::uint32_t n = 1u << order;
  std::vector<bool> seen(n * n, false);
  for (std::uint64_t d = 0; d < static_cast<std::uint64_t>(n) * n; ++d) {
    std::uint32_t x = 0, y = 0;
    HilbertDecode(order, d, &x, &y);
    ASSERT_LT(x, n);
    ASSERT_LT(y, n);
    EXPECT_FALSE(seen[y * n + x]);
    seen[y * n + x] = true;
  }
}

TEST(HilbertIndexOfTest, ClampsOutOfRegion) {
  const BoundingBox region = BoundingBox::Of(35, 23, 39, 27);
  const std::uint64_t inside = HilbertIndexOf(region, 8, {37, 25});
  (void)inside;
  // Outside positions clamp instead of crashing.
  const std::uint64_t north = HilbertIndexOf(region, 8, {50, 25});
  const std::uint64_t corner = HilbertIndexOf(region, 8, {39, 27});
  EXPECT_EQ(north, HilbertIndexOf(region, 8, {39, 25}));
  (void)corner;
}

// ---------------------------------------------------- Hilbert vs Morton

/// Partitions a 2^order grid into k equal curve ranges and counts the
/// 4-connected components across all partitions. A perfectly local curve
/// yields exactly k components (each range is one solid region).
int RangeComponents(int order, unsigned k, bool use_hilbert) {
  const unsigned n = 1u << order;
  const std::uint64_t total = static_cast<std::uint64_t>(n) * n;
  std::vector<int> part(n * n);
  for (unsigned y = 0; y < n; ++y) {
    for (unsigned x = 0; x < n; ++x) {
      const std::uint64_t d =
          use_hilbert ? HilbertEncode(order, x, y) : MortonEncode(x, y);
      part[y * n + x] = static_cast<int>(d * k / total);
    }
  }
  std::vector<bool> seen(n * n, false);
  int comps = 0;
  for (unsigned i = 0; i < n * n; ++i) {
    if (seen[i]) continue;
    ++comps;
    std::vector<unsigned> stack{i};
    seen[i] = true;
    while (!stack.empty()) {
      const unsigned c = stack.back();
      stack.pop_back();
      const unsigned x = c % n, y = c / n;
      auto push = [&](unsigned xx, unsigned yy) {
        const unsigned j = yy * n + xx;
        if (!seen[j] && part[j] == part[c]) {
          seen[j] = true;
          stack.push_back(j);
        }
      };
      if (x + 1 < n) push(x + 1, y);
      if (x > 0) push(x - 1, y);
      if (y + 1 < n) push(x, y + 1);
      if (y > 0) push(x, y - 1);
    }
  }
  return comps;
}

class CurveLocalityTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(CurveLocalityTest, HilbertRangesAreAlwaysConnected) {
  // This is the locality property the Hilbert partitioner buys: every
  // contiguous index range is one solid spatial region.
  EXPECT_EQ(RangeComponents(5, GetParam(), /*use_hilbert=*/true),
            static_cast<int>(GetParam()));
}

TEST_P(CurveLocalityTest, MortonNeverBeatsHilbertOnConnectivity) {
  EXPECT_GE(RangeComponents(5, GetParam(), /*use_hilbert=*/false),
            RangeComponents(5, GetParam(), /*use_hilbert=*/true));
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, CurveLocalityTest,
                         ::testing::Values(2u, 3u, 5u, 7u, 8u, 12u, 16u));

TEST(CurveLocalityTest, MortonFragmentsAtNonPowerOfTwo) {
  // The concrete counterexample: 7 Morton ranges on a 32x32 grid split
  // into more than 7 regions, while Hilbert stays at exactly 7.
  EXPECT_GT(RangeComponents(5, 7, /*use_hilbert=*/false), 7);
  EXPECT_EQ(RangeComponents(5, 7, /*use_hilbert=*/true), 7);
}

// ---------------------------------------------------------- SIMD kernels

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Random point; a slice of each sweep lands on the hard cases:
/// antimeridian neighborhoods, near-poles.
LatLon RandomPoint(Rng* rng, int flavor) {
  switch (flavor) {
    case 1:  // antimeridian straddle
      return {rng->Uniform(-60, 60),
              (rng->Uniform(0, 1) < 0.5 ? -1 : 1) * rng->Uniform(179.5, 180.0)};
    case 2:  // near-pole
      return {(rng->Uniform(0, 1) < 0.5 ? -1 : 1) * rng->Uniform(89.0, 90.0),
              rng->Uniform(-180, 180)};
    default:
      return {rng->Uniform(-80, 80), rng->Uniform(-180, 180)};
  }
}

/// Every batch length from 1 through a few vectors plus ragged tails.
std::vector<std::size_t> BatchLengths() {
  std::vector<std::size_t> lens;
  const std::size_t w = static_cast<std::size_t>(simd::kNativeWidth);
  for (std::size_t n = 1; n <= 3 * w + 1; ++n) lens.push_back(n);
  return lens;
}

class HaversineBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(HaversineBatchTest, LanesBitEqualAcrossDispatchAndUlpCloseToLibm) {
  Rng rng(11000 + GetParam());
  for (std::size_t n : BatchLengths()) {
    std::vector<double> a_lat(n), a_lon(n), b_lat(n), b_lon(n);
    std::vector<LatLon> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = RandomPoint(&rng, static_cast<int>(i % 3));
      b[i] = RandomPoint(&rng, static_cast<int>((i + GetParam()) % 3));
      a_lat[i] = a[i].lat_deg;
      a_lon[i] = a[i].lon_deg;
      b_lat[i] = b[i].lat_deg;
      b_lon[i] = b[i].lon_deg;
    }
    std::vector<double> native(n), scalar(n);
    HaversineMetersBatch(a_lat.data(), a_lon.data(), b_lat.data(),
                         b_lon.data(), n, native.data(),
                         SimdDispatch::kNative);
    HaversineMetersBatch(a_lat.data(), a_lon.data(), b_lat.data(),
                         b_lon.data(), n, scalar.data(),
                         SimdDispatch::kScalarOnly);
    for (std::size_t i = 0; i < n; ++i) {
      // Backend-independence is exact.
      EXPECT_EQ(Bits(native[i]), Bits(scalar[i])) << "n=" << n << " i=" << i;
      // Agreement with libm is the documented ULP-bound class: the
      // polynomial trig plus the asin cancellation keep it within
      // ~1e-12 relative of HaversineMeters (plus slack for tiny
      // distances where the absolute error floor dominates).
      const double ref = HaversineMeters(a[i], b[i]);
      EXPECT_NEAR(native[i], ref, 1e-11 * ref + 1e-5)
          << "a=(" << a[i].lat_deg << "," << a[i].lon_deg << ") b=("
          << b[i].lat_deg << "," << b[i].lon_deg << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, HaversineBatchTest, ::testing::Range(0, 20));

class EquirectBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(EquirectBatchTest, BitIdenticalToScalarFunction) {
  Rng rng(12000 + GetParam());
  // Pair-for-pair with the pair's own mean-latitude cosine, the batched
  // kernel reproduces EquirectangularMeters bit for bit (gate class).
  for (int i = 0; i < 50; ++i) {
    const LatLon a = RandomPoint(&rng, i % 3);
    const LatLon b = RandomPoint(&rng, (i + 1) % 3);
    const double cos_lat =
        std::cos((a.lat_deg + b.lat_deg) * 0.5 * kDegToRad);
    EXPECT_EQ(Bits(EquirectangularMetersWithCos(cos_lat, a, b)),
              Bits(EquirectangularMeters(a, b)));
  }
  // And batches agree with the scalar convenience wrapper at every
  // length, on both dispatch paths.
  const double cos_ref = std::cos(37.0 * kDegToRad);
  for (std::size_t n : BatchLengths()) {
    std::vector<double> a_lat(n), a_lon(n), b_lat(n), b_lon(n);
    std::vector<LatLon> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = RandomPoint(&rng, static_cast<int>(i % 3));
      b[i] = RandomPoint(&rng, static_cast<int>((i + 1) % 3));
      a_lat[i] = a[i].lat_deg;
      a_lon[i] = a[i].lon_deg;
      b_lat[i] = b[i].lat_deg;
      b_lon[i] = b[i].lon_deg;
    }
    std::vector<double> native(n), scalar(n);
    EquirectangularMetersBatch(cos_ref, a_lat.data(), a_lon.data(),
                               b_lat.data(), b_lon.data(), n, native.data(),
                               SimdDispatch::kNative);
    EquirectangularMetersBatch(cos_ref, a_lat.data(), a_lon.data(),
                               b_lat.data(), b_lon.data(), n, scalar.data(),
                               SimdDispatch::kScalarOnly);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(native[i]), Bits(scalar[i])) << "n=" << n << " i=" << i;
      EXPECT_EQ(Bits(native[i]),
                Bits(EquirectangularMetersWithCos(cos_ref, a[i], b[i])));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EquirectBatchTest, ::testing::Range(0, 20));

class PointToSegmentBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(PointToSegmentBatchTest, BitIdenticalToScalarFunction) {
  Rng rng(13000 + GetParam());
  const LatLon seg_a = RandomPoint(&rng, GetParam() % 3);
  // Mix of real segments and the degenerate point-segment.
  const LatLon seg_b =
      GetParam() % 5 == 0
          ? seg_a
          : LatLon{seg_a.lat_deg + rng.Uniform(-0.5, 0.5),
                   seg_a.lon_deg + rng.Uniform(-0.5, 0.5)};
  for (std::size_t n : BatchLengths()) {
    std::vector<double> p_lat(n), p_lon(n);
    for (std::size_t i = 0; i < n; ++i) {
      p_lat[i] = seg_a.lat_deg + rng.Uniform(-1.0, 1.0);
      p_lon[i] = seg_a.lon_deg + rng.Uniform(-1.0, 1.0);
    }
    std::vector<double> native(n), scalar(n);
    PointToSegmentMetersBatch(seg_a, seg_b, p_lat.data(), p_lon.data(), n,
                              native.data(), SimdDispatch::kNative);
    PointToSegmentMetersBatch(seg_a, seg_b, p_lat.data(), p_lon.data(), n,
                              scalar.data(), SimdDispatch::kScalarOnly);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(Bits(native[i]), Bits(scalar[i])) << "n=" << n << " i=" << i;
      // Gate class: exact agreement with the legacy scalar function.
      EXPECT_EQ(Bits(native[i]),
                Bits(PointToSegmentMeters({p_lat[i], p_lon[i]}, seg_a, seg_b)))
          << "n=" << n << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, PointToSegmentBatchTest,
                         ::testing::Range(0, 20));

class BboxBatchTest : public ::testing::TestWithParam<int> {};

TEST_P(BboxBatchTest, MatchesScalarContainsIncludingNaN) {
  Rng rng(14000 + GetParam());
  std::vector<BoundingBox> boxes;
  const std::size_t n_boxes =
      static_cast<std::size_t>(rng.UniformInt(1, 3 * simd::kNativeWidth + 1));
  BboxSoa soa;
  for (std::size_t i = 0; i < n_boxes; ++i) {
    const double lat0 = rng.Uniform(-80, 80);
    const double lon0 = rng.Uniform(-180, 170);
    const BoundingBox bb = BoundingBox::Of(
        lat0, lon0, lat0 + rng.Uniform(0.01, 5), lon0 + rng.Uniform(0.01, 5));
    boxes.push_back(bb);
    soa.Add(bb);
  }
  std::vector<std::uint8_t> hits(n_boxes);
  for (int trial = 0; trial < 50; ++trial) {
    LatLon p = RandomPoint(&rng, trial % 3);
    if (trial % 7 == 0) {
      // Inside the first box, so hits are exercised (not just misses).
      p = {boxes[0].min_lat + 0.001, boxes[0].min_lon + 0.001};
    }
    if (trial % 11 == 0) p.lat_deg = std::nan("");
    const SimdDispatch dispatch =
        trial % 2 == 0 ? SimdDispatch::kNative : SimdDispatch::kScalarOnly;
    BboxContainsBatch(soa, p, hits.data(), dispatch);
    for (std::size_t i = 0; i < n_boxes; ++i) {
      EXPECT_EQ(hits[i] != 0, boxes[i].Contains(p))
          << "trial=" << trial << " box=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BboxBatchTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace datacron
