#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "common/rng.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "query/query.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

/// Fixture: fleet RDF-ized into a 4-way Hilbert-partitioned store plus a
/// 1-partition reference store (ground truth for completeness checks).
class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest() : vocab_(&dict_) {
    Rdfizer::Config cfg;
    rdfizer_ = std::make_unique<Rdfizer>(cfg, &dict_, &vocab_);
    AisGeneratorConfig fleet;
    fleet.num_vessels = 8;
    fleet.duration = 30 * kMinute;
    traces_ = GenerateAisFleet(fleet);
    ObservationConfig obs;
    obs.fixed_interval_ms = 30 * kSecond;
    reports_ = ObserveFleet(traces_, obs);
    for (const auto& r : reports_) {
      const auto ts = rdfizer_->TransformReport(r);
      triples_.insert(triples_.end(), ts.begin(), ts.end());
    }
    scheme_ =
        HilbertPartitioner::Build(4, &rdfizer_->tags(), rdfizer_->grid());
    store_.Load(triples_, *scheme_, rdfizer_->grid(), vocab_.p_next_node);
    HashPartitioner single(1, &rdfizer_->tags());
    reference_.Load(triples_, single, rdfizer_->grid());
  }

  /// Star query: nodes of a given entity with their speed.
  Query NodeStarQuery(EntityId entity) {
    QueryBuilder qb;
    qb.Where("node", vocab_.p_of_entity, dict_.Intern(EntityIri(entity)));
    qb.WhereVar("node", vocab_.p_speed, "speed");
    return qb.Build();
  }

  std::set<std::vector<TermId>> RowSet(const ResultSet& rs) {
    return {rs.rows.begin(), rs.rows.end()};
  }

  TermDictionary dict_;
  Vocab vocab_;
  std::unique_ptr<Rdfizer> rdfizer_;
  std::vector<TruthTrace> traces_;
  std::vector<PositionReport> reports_;
  std::vector<Triple> triples_;
  std::unique_ptr<HilbertPartitioner> scheme_;
  PartitionedRdfStore store_;
  PartitionedRdfStore reference_;
};

TEST_F(QueryEngineTest, BuilderAssignsVariables) {
  QueryBuilder qb;
  qb.WhereVar("a", 1, "b");
  qb.WhereVar("b", 2, "c");
  const Query q = qb.Build();
  EXPECT_EQ(q.num_vars, 3);
  EXPECT_EQ(q.bgp.size(), 2u);
  EXPECT_EQ(q.bgp[0].o.var, q.bgp[1].s.var);  // "b" shared
}

TEST_F(QueryEngineTest, StarQueryLocalEqualsGlobalEqualsReference) {
  const Query q = NodeStarQuery(traces_[0].entity_id);
  QueryEngine part_engine(&store_, rdfizer_.get());
  QueryEngine ref_engine(&reference_, rdfizer_.get());
  const auto local = part_engine.ExecuteLocal(q);
  const auto global = part_engine.ExecuteGlobal(q);
  const auto ref = ref_engine.ExecuteLocal(q);
  EXPECT_FALSE(ref.rows.empty());
  EXPECT_EQ(RowSet(local), RowSet(ref));
  EXPECT_EQ(RowSet(global), RowSet(ref));
}

TEST_F(QueryEngineTest, TypeScanFindsAllVessels) {
  QueryBuilder qb;
  qb.Where("v", vocab_.p_type, vocab_.c_vessel);
  QueryEngine engine(&store_, rdfizer_.get());
  const auto rs = engine.ExecuteGlobal(qb.Build());
  EXPECT_EQ(rs.rows.size(), 8u);
}

TEST_F(QueryEngineTest, SpatialConstraintFiltersNodes) {
  // All nodes within a box, via constraint; verify against node_geo.
  // The box covers most of the region so the fleet surely intersects it.
  const BoundingBox box = BoundingBox::Of(35.3, 23.3, 38.7, 26.7);
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(vocab_.p_type),
             QueryTerm::Bound(vocab_.c_position_node));
  qb.Within("node", box);
  QueryEngine engine(&store_, rdfizer_.get());
  const auto rs = engine.ExecuteGlobal(qb.Build());
  std::size_t expected = 0;
  for (const auto& [node, geo] : rdfizer_->node_geo()) {
    if (box.Contains(LatLon{geo.lat_deg, geo.lon_deg})) ++expected;
  }
  EXPECT_EQ(rs.rows.size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(QueryEngineTest, TemporalConstraintFiltersNodes) {
  const TimestampMs t0 = reports_.front().timestamp;
  const TimestampMs t1 = t0 + 10 * kMinute;
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(vocab_.p_type),
             QueryTerm::Bound(vocab_.c_position_node));
  qb.During("node", t0, t1);
  QueryEngine engine(&store_, rdfizer_.get());
  const auto rs = engine.ExecuteGlobal(qb.Build());
  std::size_t expected = 0;
  for (const auto& [node, geo] : rdfizer_->node_geo()) {
    if (geo.timestamp >= t0 && geo.timestamp <= t1) ++expected;
  }
  EXPECT_EQ(rs.rows.size(), expected);
  EXPECT_GT(expected, 0u);
}

TEST_F(QueryEngineTest, GlobalCompletesCrossPartitionPaths) {
  // Path query: node -> next -> node; global must equal the reference.
  QueryBuilder qb;
  qb.WhereVar("a", vocab_.p_next_node, "b");
  QueryEngine part_engine(&store_, rdfizer_.get());
  QueryEngine ref_engine(&reference_, rdfizer_.get());
  const auto global = part_engine.ExecuteGlobal(qb.Build());
  const auto ref = ref_engine.ExecuteLocal(qb.Build());
  EXPECT_FALSE(ref.rows.empty());
  EXPECT_EQ(RowSet(global), RowSet(ref));
  // Local union misses the cross-partition edges (the known trade-off).
  const auto local = part_engine.ExecuteLocal(qb.Build());
  EXPECT_LE(local.rows.size(), ref.rows.size());
}

TEST_F(QueryEngineTest, ParallelExecutionMatchesSequential) {
  ThreadPool pool(4);
  const Query q = NodeStarQuery(traces_[1].entity_id);
  QueryEngine seq(&store_, rdfizer_.get(), nullptr);
  QueryEngine par(&store_, rdfizer_.get(), &pool);
  EXPECT_EQ(RowSet(seq.ExecuteLocal(q)), RowSet(par.ExecuteLocal(q)));
  EXPECT_EQ(RowSet(seq.ExecuteGlobal(q)), RowSet(par.ExecuteGlobal(q)));
}

TEST_F(QueryEngineTest, PruningReducesScannedPartitions) {
  // Constrain to a tiny region: fewer partitions scanned than total.
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(vocab_.p_type),
             QueryTerm::Bound(vocab_.c_position_node));
  qb.Within("node", BoundingBox::Of(35.1, 23.1, 35.3, 23.3));
  QueryEngine engine(&store_, rdfizer_.get());
  const auto rs = engine.ExecuteLocal(qb.Build());
  EXPECT_LT(rs.stats.partitions_scanned, rs.stats.partitions_total);
}

TEST_F(QueryEngineTest, EmptyQueryGivesEmptyResult) {
  QueryEngine engine(&store_, rdfizer_.get());
  Query q;
  EXPECT_TRUE(engine.ExecuteLocal(q).rows.empty());
  EXPECT_TRUE(engine.ExecuteGlobal(q).rows.empty());
}

TEST_F(QueryEngineTest, UnsatisfiableQueryGivesNoRows) {
  QueryBuilder qb;
  qb.Where("v", vocab_.p_type, dict_.Intern("dc:NoSuchClass"));
  QueryEngine engine(&store_, rdfizer_.get());
  EXPECT_TRUE(engine.ExecuteGlobal(qb.Build()).rows.empty());
  EXPECT_TRUE(engine.ExecuteLocal(qb.Build()).rows.empty());
}

TEST_F(QueryEngineTest, JoinAcrossThreePatterns) {
  // Vessel -> its trajectory nodes in an area with speed — a realistic
  // spatiotemporal analytical query.
  const BoundingBox box = BoundingBox::Of(35.5, 23.5, 38.5, 26.5);
  QueryBuilder qb;
  qb.Pattern(QueryTerm::Var(qb.Var("v")), QueryTerm::Bound(vocab_.p_type),
             QueryTerm::Bound(vocab_.c_vessel));
  qb.Pattern(QueryTerm::Var(qb.Var("node")),
             QueryTerm::Bound(vocab_.p_of_entity),
             QueryTerm::Var(qb.Var("v")));
  qb.WhereVar("node", vocab_.p_speed, "speed");
  qb.Within("node", box);
  QueryEngine part_engine(&store_, rdfizer_.get());
  QueryEngine ref_engine(&reference_, rdfizer_.get());
  const auto global = part_engine.ExecuteGlobal(qb.Build());
  const auto ref = ref_engine.ExecuteGlobal(qb.Build());
  EXPECT_EQ(RowSet(global), RowSet(ref));
  EXPECT_FALSE(global.rows.empty());
}

class QueryFuzzTest : public QueryEngineTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(QueryFuzzTest, RandomBgpGlobalMatchesReference) {
  // Random 1-3 pattern conjunctive queries over the real vocabulary;
  // the partitioned global execution must agree with the single-store
  // reference on every one of them.
  Rng rng(4100 + GetParam());
  const std::vector<TermId> predicates = {
      vocab_.p_type,      vocab_.p_of_entity, vocab_.p_speed,
      vocab_.p_course,    vocab_.p_in_cell,   vocab_.p_in_bucket,
      vocab_.p_next_node, vocab_.p_has_node,
  };
  QueryBuilder qb;
  const int num_patterns = static_cast<int>(rng.UniformInt(1, 3));
  const char* vars[] = {"a", "b", "c", "d"};
  for (int i = 0; i < num_patterns; ++i) {
    const TermId pred =
        predicates[static_cast<std::size_t>(rng.UniformInt(
            0, static_cast<std::int64_t>(predicates.size()) - 1))];
    // Subject: always a variable (possibly shared); object: variable or
    // a bound class/entity.
    const char* subj = vars[rng.UniformInt(0, 1)];
    if (rng.Bernoulli(0.5)) {
      qb.WhereVar(subj, pred, vars[rng.UniformInt(1, 3)]);
    } else {
      const TermId objects[] = {
          vocab_.c_position_node, vocab_.c_vessel,
          dict_.Intern(EntityIri(traces_[0].entity_id))};
      qb.Where(subj, pred, objects[rng.UniformInt(0, 2)]);
    }
  }
  if (rng.Bernoulli(0.4)) {
    qb.Within(vars[0], BoundingBox::Of(35.5, 23.5, 38.0, 26.0));
  }
  const Query q = qb.Build();

  QueryEngine part_engine(&store_, rdfizer_.get());
  QueryEngine ref_engine(&reference_, rdfizer_.get());
  const auto got = part_engine.ExecuteGlobal(q);
  const auto ref = ref_engine.ExecuteGlobal(q);
  EXPECT_EQ(RowSet(got), RowSet(ref)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryFuzzTest, ::testing::Range(0, 25));

TEST_F(QueryEngineTest, StatsPopulated) {
  const Query q = NodeStarQuery(traces_[2].entity_id);
  QueryEngine engine(&store_, rdfizer_.get());
  const auto rs = engine.ExecuteGlobal(q);
  EXPECT_EQ(rs.stats.result_rows, rs.rows.size());
  EXPECT_GT(rs.stats.partitions_total, 0);
  EXPECT_GE(rs.stats.wall_ms, 0.0);
  EXPECT_FALSE(rs.stats.ToString().empty());
}

}  // namespace
}  // namespace datacron
