#include <gtest/gtest.h>

#include "rdf/streaming_store.h"

namespace datacron {
namespace {

Triple T(TermId s, TermId p, TermId o) { return Triple{s, p, o}; }

StreamingRdfStore::Config SmallConfig() {
  StreamingRdfStore::Config cfg;
  cfg.bucket_ms = kMinute;
  cfg.retention_buckets = 3;
  return cfg;
}

TEST(StreamingStoreTest, OpenBucketIsQueryable) {
  StreamingRdfStore store(SmallConfig());
  store.Add(10 * kSecond, {T(1, 2, 3)});
  EXPECT_EQ(store.OpenTriples(), 1u);
  EXPECT_EQ(store.Match({1, 0, 0}).size(), 1u);
  EXPECT_EQ(store.Match({9, 0, 0}).size(), 0u);
}

TEST(StreamingStoreTest, WatermarkSealsBuckets) {
  StreamingRdfStore store(SmallConfig());
  store.Add(10 * kSecond, {T(1, 2, 3)});
  store.Add(70 * kSecond, {T(4, 5, 6)});
  EXPECT_EQ(store.SealedBuckets(), 0u);
  store.AdvanceTo(2 * kMinute);  // bucket 0 and 1 seal
  EXPECT_EQ(store.SealedBuckets(), 2u);
  EXPECT_EQ(store.OpenTriples(), 0u);
  // Sealed data still answers.
  EXPECT_EQ(store.Match({1, 0, 0}).size(), 1u);
  EXPECT_EQ(store.Match({4, 0, 0}).size(), 1u);
}

TEST(StreamingStoreTest, RetentionEvictsOldBuckets) {
  StreamingRdfStore store(SmallConfig());  // keep 3 buckets
  for (int i = 0; i < 8; ++i) {
    store.Add(i * kMinute + 5 * kSecond,
              {T(static_cast<TermId>(100 + i), 1, 1)});
  }
  store.AdvanceTo(8 * kMinute);
  EXPECT_EQ(store.SealedBuckets(), 3u);
  EXPECT_EQ(store.evicted_triples(), 5u);
  // Oldest evicted, youngest kept.
  EXPECT_TRUE(store.Match({100, 0, 0}).empty());
  EXPECT_EQ(store.Match({107, 0, 0}).size(), 1u);
}

TEST(StreamingStoreTest, LateDataRoutedToOpenBucket) {
  StreamingRdfStore store(SmallConfig());
  store.Add(10 * kSecond, {T(1, 1, 1)});
  store.AdvanceTo(3 * kMinute);
  // An event whose bucket already sealed: must not vanish.
  store.Add(20 * kSecond, {T(9, 9, 9)});
  EXPECT_EQ(store.Match({9, 0, 0}).size(), 1u);
  store.AdvanceTo(4 * kMinute);  // seals the rerouted bucket, within retention
  EXPECT_EQ(store.Match({9, 0, 0}).size(), 1u);  // sealed now, retained
  store.AdvanceTo(10 * kMinute);  // now far past retention: evicted
  EXPECT_TRUE(store.Match({9, 0, 0}).empty());
}

TEST(StreamingStoreTest, IntegratedArchivalQuery) {
  TripleStore archival;
  archival.Add(T(50, 60, 70));
  archival.Seal();
  StreamingRdfStore store(SmallConfig());
  store.AttachArchival(&archival);
  store.Add(10 * kSecond, {T(50, 60, 71)});
  // One Match over data-at-rest + data-in-motion.
  EXPECT_EQ(store.Match({50, 60, 0}).size(), 2u);
  EXPECT_EQ(store.Count({50, 0, 0}), 2u);
}

TEST(StreamingStoreTest, SnapshotMaterializesLiveContents) {
  StreamingRdfStore store(SmallConfig());
  store.Add(10 * kSecond, {T(1, 1, 1), T(2, 2, 2)});
  store.AdvanceTo(2 * kMinute);
  store.Add(130 * kSecond, {T(3, 3, 3)});
  const TripleStore snap = store.Snapshot();
  EXPECT_EQ(snap.size(), 3u);
  EXPECT_TRUE(snap.sealed());
}

TEST(StreamingStoreTest, LiveTriplesAccounting) {
  StreamingRdfStore store(SmallConfig());
  store.Add(10 * kSecond, {T(1, 1, 1)});
  store.Add(70 * kSecond, {T(2, 2, 2), T(3, 3, 3)});
  EXPECT_EQ(store.LiveTriples(), 3u);
  store.AdvanceTo(3 * kMinute);
  EXPECT_EQ(store.LiveTriples(), 3u);  // sealing does not lose data
}

}  // namespace
}  // namespace datacron
