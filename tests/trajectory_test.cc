#include <gtest/gtest.h>

#include <algorithm>

#include "sources/ais_generator.h"
#include "trajectory/reconstruct.h"
#include "trajectory/similarity.h"
#include "trajectory/trajectory_store.h"

namespace datacron {
namespace {

PositionReport At(EntityId id, TimestampMs t, double lat, double lon,
                  double speed = 5.0) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = {lat, lon, 0};
  r.speed_mps = speed;
  return r;
}

Trajectory MakeTraj(EntityId id,
                    std::initializer_list<std::pair<double, double>> pts) {
  Trajectory t;
  t.entity_id = id;
  TimestampMs ts = 0;
  for (const auto& [lat, lon] : pts) {
    t.points.push_back(At(id, ts, lat, lon));
    ts += 60 * kSecond;
  }
  return t;
}

// ------------------------------------------------------------- store

TEST(TrajectoryStoreTest, InOrderAppend) {
  TrajectoryStore store;
  store.Add(At(1, 100, 36, 24));
  store.Add(At(1, 200, 36.001, 24));
  store.Add(At(2, 150, 37, 25));
  EXPECT_EQ(store.EntityCount(), 2u);
  EXPECT_EQ(store.TotalPoints(), 3u);
  EXPECT_EQ(store.Get(1).points.size(), 2u);
}

TEST(TrajectoryStoreTest, OutOfOrderInsertSorts) {
  TrajectoryStore store;
  store.Add(At(1, 300, 36.002, 24));
  store.Add(At(1, 100, 36.000, 24));
  store.Add(At(1, 200, 36.001, 24));
  const auto& pts = store.Get(1).points;
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].timestamp, 100);
  EXPECT_EQ(pts[1].timestamp, 200);
  EXPECT_EQ(pts[2].timestamp, 300);
}

TEST(TrajectoryStoreTest, UnknownEntityEmpty) {
  TrajectoryStore store;
  EXPECT_TRUE(store.Get(99).empty());
}

TEST(TrajectoryStoreTest, GetRange) {
  TrajectoryStore store;
  for (int i = 0; i < 10; ++i) {
    store.Add(At(1, i * 1000, 36 + i * 0.001, 24));
  }
  const auto range = store.GetRange(1, 2500, 6500);
  ASSERT_EQ(range.size(), 4u);
  EXPECT_EQ(range.front().timestamp, 3000);
  EXPECT_EQ(range.back().timestamp, 6000);
}

TEST(TrajectoryTest, LengthAndBounds) {
  const Trajectory t = MakeTraj(1, {{36, 24}, {36, 24.1}, {36, 24.2}});
  EXPECT_NEAR(t.LengthMeters(),
              2 * HaversineMeters({36, 24}, {36, 24.1}), 1.0);
  const BoundingBox b = t.Bounds();
  EXPECT_DOUBLE_EQ(b.min_lon, 24.0);
  EXPECT_DOUBLE_EQ(b.max_lon, 24.2);
  EXPECT_EQ(t.Duration(), 2 * 60 * kSecond);
}

// ------------------------------------------------------------- cleaning

TEST(RejectOutliersTest, SpeedGateDropsImpossibleJump) {
  std::vector<PositionReport> pts = {
      At(1, 0, 36.0, 24.0),
      At(1, 10 * kSecond, 36.001, 24.0),  // ~111 m in 10 s, fine
      At(1, 20 * kSecond, 36.5, 24.0),    // ~55 km in 10 s, impossible
      At(1, 30 * kSecond, 36.002, 24.0),
  };
  std::size_t rejected = 0;
  const auto clean = RejectOutliers(pts, 55.0, &rejected);
  EXPECT_EQ(rejected, 1u);
  ASSERT_EQ(clean.size(), 3u);
  EXPECT_EQ(clean[2].timestamp, 30 * kSecond);
}

TEST(RejectOutliersTest, InvalidPositionsDropped) {
  std::vector<PositionReport> pts = {At(1, 0, 36, 24), At(1, 1000, 95, 24)};
  std::size_t rejected = 0;
  const auto clean = RejectOutliers(pts, 55.0, &rejected);
  EXPECT_EQ(rejected, 1u);
  EXPECT_EQ(clean.size(), 1u);
}

TEST(SplitAtGapsTest, SplitsOnSilence) {
  std::vector<PositionReport> pts;
  for (int i = 0; i < 5; ++i) pts.push_back(At(1, i * 10000, 36, 24));
  for (int i = 0; i < 5; ++i) {
    pts.push_back(At(1, kHour + i * 10000, 36.1, 24));
  }
  const auto segments = SplitAtGaps(pts, 15 * kMinute);
  ASSERT_EQ(segments.size(), 2u);
  EXPECT_EQ(segments[0].size(), 5u);
  EXPECT_EQ(segments[1].size(), 5u);
}

TEST(ResampleTest, FixedIntervalOutput) {
  std::vector<PositionReport> seg = {
      At(1, 0, 36.0, 24.0), At(1, 95 * kSecond, 36.01, 24.0)};
  const auto resampled = Resample(seg, 30 * kSecond);
  ASSERT_EQ(resampled.size(), 4u);  // t = 0, 30, 60, 90
  for (std::size_t i = 0; i < resampled.size(); ++i) {
    EXPECT_EQ(resampled[i].timestamp,
              static_cast<TimestampMs>(i) * 30 * kSecond);
  }
  // Interpolated latitudes are monotone.
  for (std::size_t i = 1; i < resampled.size(); ++i) {
    EXPECT_GT(resampled[i].position.lat_deg,
              resampled[i - 1].position.lat_deg);
  }
}

TEST(ResampleTest, RecomputedSpeedMatchesMotion) {
  // 111 m per 30 s => ~3.7 m/s.
  std::vector<PositionReport> seg = {At(1, 0, 36.0, 24.0, 99),
                                     At(1, 60 * kSecond, 36.002, 24.0, 99)};
  const auto resampled = Resample(seg, 30 * kSecond);
  ASSERT_GE(resampled.size(), 2u);
  EXPECT_NEAR(resampled[0].speed_mps, 3.7, 0.2);
}

TEST(ReconstructTest, FullPipelineOnNoisyFleet) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 3;
  cfg.duration = kHour;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  obs.position_noise_m = 15;
  obs.gap_probability = 0.002;
  for (const auto& trace : traces) {
    const auto reports = Observe(trace, obs);
    ReconstructionConfig rc;
    ReconstructionStats stats;
    const auto trips = Reconstruct(reports, rc, &stats);
    ASSERT_FALSE(trips.empty());
    EXPECT_EQ(stats.input_points, reports.size());
    EXPECT_EQ(stats.segments, trips.size());
    // Reconstruction should track truth within noise + interpolation.
    for (const auto& trip : trips) {
      EXPECT_LT(ReconstructionErrorMeters(trip, trace), 120.0);
    }
  }
}

TEST(ReconstructTest, GapsProduceMultipleTrips) {
  std::vector<PositionReport> reports;
  for (int i = 0; i < 20; ++i) reports.push_back(At(1, i * 30000, 36, 24));
  for (int i = 0; i < 20; ++i) {
    reports.push_back(At(1, 2 * kHour + i * 30000, 36.5, 24.5));
  }
  const auto trips = Reconstruct(reports, ReconstructionConfig{});
  EXPECT_EQ(trips.size(), 2u);
}

// ------------------------------------------------------------- similarity

TEST(DtwTest, IdentityIsZero) {
  const Trajectory t = MakeTraj(1, {{36, 24}, {36.1, 24.1}, {36.2, 24.2}});
  EXPECT_NEAR(DtwDistanceMeters(t, t), 0.0, 1e-9);
}

TEST(DtwTest, Symmetric) {
  const Trajectory a = MakeTraj(1, {{36, 24}, {36.1, 24.1}, {36.2, 24.3}});
  const Trajectory b = MakeTraj(2, {{36, 24.05}, {36.15, 24.2}});
  EXPECT_NEAR(DtwDistanceMeters(a, b), DtwDistanceMeters(b, a), 1e-6);
}

TEST(DtwTest, ParallelRoutesSeparatedByOffset) {
  // Two parallel tracks ~11 km apart: DTW ~ offset.
  Trajectory a = MakeTraj(1, {{36, 24}, {36, 24.2}, {36, 24.4}});
  Trajectory b = MakeTraj(2, {{36.1, 24}, {36.1, 24.2}, {36.1, 24.4}});
  EXPECT_NEAR(DtwDistanceMeters(a, b), 11120, 500);
}

TEST(DtwTest, EmptyIsInfinite) {
  Trajectory a = MakeTraj(1, {{36, 24}});
  Trajectory empty;
  EXPECT_TRUE(std::isinf(DtwDistanceMeters(a, empty)));
}

TEST(FrechetTest, IdentityIsZero) {
  const Trajectory t = MakeTraj(1, {{36, 24}, {36.1, 24.1}});
  EXPECT_NEAR(FrechetDistanceMeters(t, t), 0.0, 1e-9);
}

TEST(FrechetTest, DominatedByWorstDeviation) {
  Trajectory a = MakeTraj(1, {{36, 24}, {36, 24.2}, {36, 24.4}});
  Trajectory b = MakeTraj(2, {{36, 24}, {36.2, 24.2}, {36, 24.4}});
  // Only the middle deviates (~22 km); Fréchet must see it.
  EXPECT_GT(FrechetDistanceMeters(a, b), 20000);
  // DTW averages it away over the path.
  EXPECT_LT(DtwDistanceMeters(a, b), FrechetDistanceMeters(a, b));
}

TEST(FrechetTest, SymmetricOnSamples) {
  const Trajectory a = MakeTraj(1, {{36, 24}, {36.3, 24.5}, {36.2, 24.9}});
  const Trajectory b = MakeTraj(2, {{36.1, 24}, {36.4, 24.4}});
  EXPECT_NEAR(FrechetDistanceMeters(a, b), FrechetDistanceMeters(b, a),
              1e-6);
}

TEST(ClusterTest, GroupsSimilarSeparatesDifferent) {
  std::vector<Trajectory> trajs = {
      MakeTraj(1, {{36, 24}, {36, 24.2}, {36, 24.4}}),
      MakeTraj(2, {{36.005, 24}, {36.005, 24.2}, {36.005, 24.4}}),
      MakeTraj(3, {{38, 26}, {38, 26.2}, {38, 26.4}}),
  };
  const auto result = ClusterByThreshold(trajs, 2000);
  EXPECT_EQ(result.medoids.size(), 2u);
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_NE(result.assignment[0], result.assignment[2]);
}

TEST(ClusterTest, EveryTrajectoryAssigned) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 10;
  cfg.duration = 30 * kMinute;
  const auto traces = GenerateAisFleet(cfg);
  std::vector<Trajectory> trajs;
  for (const auto& tr : traces) {
    Trajectory t;
    t.entity_id = tr.entity_id;
    for (std::size_t i = 0; i < tr.samples.size(); i += 60) {
      t.points.push_back(tr.samples[i]);
    }
    trajs.push_back(std::move(t));
  }
  const auto result = ClusterByThreshold(trajs, 10000);
  ASSERT_EQ(result.assignment.size(), trajs.size());
  for (int a : result.assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, static_cast<int>(result.medoids.size()));
  }
}

}  // namespace
}  // namespace datacron
