#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "common/strings.h"
#include "rdf/rdfizer.h"
#include "rdf/term.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

// ------------------------------------------------------------ dictionary

TEST(TermDictionaryTest, InternIsIdempotent) {
  TermDictionary dict;
  const TermId a = dict.Intern("ent:1");
  const TermId b = dict.Intern("ent:1");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kInvalidTermId);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(TermDictionaryTest, RoundTrip) {
  TermDictionary dict;
  const TermId id = dict.Intern("node:42/1000");
  auto text = dict.Text(id);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "node:42/1000");
}

TEST(TermDictionaryTest, FindWithoutIntern) {
  TermDictionary dict;
  EXPECT_EQ(dict.Find("missing"), kInvalidTermId);
  dict.Intern("present");
  EXPECT_NE(dict.Find("present"), kInvalidTermId);
}

TEST(TermDictionaryTest, UnknownIdIsError) {
  TermDictionary dict;
  EXPECT_FALSE(dict.Text(999).ok());
  EXPECT_FALSE(dict.Text(kInvalidTermId).ok());
}

TEST(TermDictionaryTest, TypedLiterals) {
  TermDictionary dict;
  const TermId i = dict.InternInt(-5);
  const TermId d = dict.InternDouble(3.5);
  const TermId t = dict.InternDateTime(1490054400000);
  EXPECT_EQ(dict.Kind(i), TermKind::kLiteralInt);
  EXPECT_EQ(dict.Kind(d), TermKind::kLiteralDouble);
  EXPECT_EQ(dict.Kind(t), TermKind::kLiteralDateTime);
  EXPECT_EQ(dict.Text(i).value(), "-5");
}

TEST(TermDictionaryTest, IdsAreDense) {
  TermDictionary dict;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dict.Intern(StrFormat("x:%d", i)),
              static_cast<TermId>(i + 1));
  }
}

// ------------------------------------------------------------ store

std::vector<Triple> RandomTriples(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Triple> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back({static_cast<TermId>(rng.UniformInt(1, 50)),
                   static_cast<TermId>(rng.UniformInt(51, 60)),
                   static_cast<TermId>(rng.UniformInt(1, 100))});
  }
  return out;
}

TEST(TripleStoreTest, SealDeduplicates) {
  TripleStore store;
  store.Add({1, 2, 3});
  store.Add({1, 2, 3});
  store.Add({1, 2, 4});
  store.Seal();
  EXPECT_EQ(store.size(), 2u);
}

TEST(TripleStoreTest, MatchFullyBound) {
  TripleStore store;
  store.Add({1, 2, 3});
  store.Add({1, 2, 4});
  store.Seal();
  EXPECT_EQ(store.Match({1, 2, 3}).size(), 1u);
  EXPECT_EQ(store.Match({1, 2, 9}).size(), 0u);
}

class TripleStorePatternTest : public ::testing::TestWithParam<int> {};

TEST_P(TripleStorePatternTest, AllPatternShapesMatchBruteForce) {
  const auto triples = RandomTriples(2000, 1234 + GetParam());
  TripleStore store;
  store.AddBatch(triples);
  store.Seal();

  // Deduplicate reference set.
  std::set<std::tuple<TermId, TermId, TermId>> ref;
  for (const Triple& t : triples) ref.insert({t.s, t.p, t.o});

  Rng rng(99 + GetParam());
  for (int q = 0; q < 30; ++q) {
    TriplePattern pat;
    // Random shape: each position bound with p=0.5.
    if (rng.Bernoulli(0.5)) pat.s = static_cast<TermId>(rng.UniformInt(1, 50));
    if (rng.Bernoulli(0.5)) pat.p = static_cast<TermId>(rng.UniformInt(51, 60));
    if (rng.Bernoulli(0.5)) pat.o = static_cast<TermId>(rng.UniformInt(1, 100));

    std::set<std::tuple<TermId, TermId, TermId>> expected;
    for (const auto& [s, p, o] : ref) {
      if ((pat.s == 0 || s == pat.s) && (pat.p == 0 || p == pat.p) &&
          (pat.o == 0 || o == pat.o)) {
        expected.insert({s, p, o});
      }
    }
    std::set<std::tuple<TermId, TermId, TermId>> got;
    for (const Triple& t : store.Match(pat)) got.insert({t.s, t.p, t.o});
    EXPECT_EQ(got, expected) << "pattern (" << pat.s << "," << pat.p << ","
                             << pat.o << ")";
    EXPECT_EQ(store.Count(pat), expected.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TripleStorePatternTest,
                         ::testing::Range(0, 5));

TEST(TripleStoreTest, ScanEarlyStop) {
  TripleStore store;
  for (TermId i = 1; i <= 100; ++i) store.Add({i, 1, 1});
  store.Seal();
  int visited = 0;
  store.Scan({0, 1, 0}, [&](const Triple&) { return ++visited < 5; });
  EXPECT_EQ(visited, 5);
}

TEST(TripleStoreTest, PredicatesEnumerated) {
  TripleStore store;
  store.Add({1, 10, 2});
  store.Add({1, 20, 2});
  store.Add({3, 10, 4});
  store.Seal();
  const auto preds = store.Predicates();
  EXPECT_EQ(preds, (std::vector<TermId>{10, 20}));
}

TEST(TripleStoreTest, EmptyStore) {
  TripleStore store;
  store.Seal();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Match({0, 0, 0}).empty());
}

// ------------------------------------------------------------ rdfizer

class RdfizerTest : public ::testing::Test {
 protected:
  RdfizerTest()
      : vocab_(&dict_), rdfizer_(Rdfizer::Config{}, &dict_, &vocab_) {}

  PositionReport Report(EntityId id, TimestampMs t) {
    PositionReport r;
    r.entity_id = id;
    r.timestamp = t;
    r.position = {36.5, 24.5, 0};
    r.speed_mps = 7.0;
    r.course_deg = 120.0;
    return r;
  }

  TermDictionary dict_;
  Vocab vocab_;
  Rdfizer rdfizer_;
};

TEST_F(RdfizerTest, ReportProducesNodeTriples) {
  const auto triples =
      rdfizer_.TransformReport(Report(200000001, 1490054400000));
  EXPECT_GE(triples.size(), 10u);
  // The node must be typed as PositionNode.
  const TermId node = rdfizer_.NodeIdOf(Report(200000001, 1490054400000));
  ASSERT_NE(node, kInvalidTermId);
  bool typed = false;
  for (const Triple& t : triples) {
    if (t.s == node && t.p == vocab_.p_type &&
        t.o == vocab_.c_position_node) {
      typed = true;
    }
  }
  EXPECT_TRUE(typed);
}

TEST_F(RdfizerTest, EntityTriplesEmittedOnce) {
  const auto first = rdfizer_.TransformReport(Report(1, 1000));
  const auto second = rdfizer_.TransformReport(Report(1, 2000));
  // Entity typing appears in the first batch only.
  const TermId ent = dict_.Find(EntityIri(1));
  auto count_type = [&](const std::vector<Triple>& ts) {
    int n = 0;
    for (const Triple& t : ts) {
      if (t.s == ent && t.p == vocab_.p_type) ++n;
    }
    return n;
  };
  EXPECT_EQ(count_type(first), 1);
  EXPECT_EQ(count_type(second), 0);
}

TEST_F(RdfizerTest, SequenceLinksChainNodes) {
  rdfizer_.TransformReport(Report(1, 1000));
  const auto second = rdfizer_.TransformReport(Report(1, 2000));
  const TermId n1 = dict_.Find(PositionNodeIri(1, 1000));
  const TermId n2 = dict_.Find(PositionNodeIri(1, 2000));
  bool linked = false;
  for (const Triple& t : second) {
    if (t.s == n1 && t.p == vocab_.p_next_node && t.o == n2) linked = true;
  }
  EXPECT_TRUE(linked);
}

TEST_F(RdfizerTest, TagsRecordCellAndBucket) {
  const auto report = Report(1, 1490054400000 + 90 * kMinute);
  rdfizer_.TransformReport(report);
  const TermId node = rdfizer_.NodeIdOf(report);
  auto it = rdfizer_.tags().find(node);
  ASSERT_NE(it, rdfizer_.tags().end());
  EXPECT_EQ(it->second.bucket,
            rdfizer_.BucketOf(report.timestamp));
  EXPECT_EQ(it->second.cell,
            rdfizer_.grid().CellOf(report.position.ll()));
}

TEST_F(RdfizerTest, NodeGeoSideTable) {
  const auto report = Report(7, 1490054400000);
  rdfizer_.TransformReport(report);
  const TermId node = rdfizer_.NodeIdOf(report);
  auto it = rdfizer_.node_geo().find(node);
  ASSERT_NE(it, rdfizer_.node_geo().end());
  EXPECT_DOUBLE_EQ(it->second.lat_deg, 36.5);
  EXPECT_EQ(it->second.timestamp, report.timestamp);
}

TEST_F(RdfizerTest, CriticalPointAddsKind) {
  CriticalPoint cp;
  cp.report = Report(1, 1000);
  cp.type = CriticalPointType::kTurningPoint;
  const auto triples = rdfizer_.TransformCriticalPoint(cp);
  const TermId kind = dict_.Find("turning_point");
  ASSERT_NE(kind, kInvalidTermId);
  bool found = false;
  for (const Triple& t : triples) {
    if (t.p == vocab_.p_node_kind && t.o == kind) found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(RdfizerTest, AviationGetsAltitudeTriples) {
  PositionReport r = Report(0x400001, 1000);
  r.domain = Domain::kAviation;
  r.position.alt_m = 10000;
  r.vertical_rate_mps = 5;
  const auto triples = rdfizer_.TransformReport(r);
  bool has_alt = false;
  for (const Triple& t : triples) {
    if (t.p == vocab_.p_alt) has_alt = true;
  }
  EXPECT_TRUE(has_alt);
}

TEST_F(RdfizerTest, WeatherTriples) {
  WeatherSample s;
  s.cell = {3, 4};
  s.bucket_start = rdfizer_.config().epoch + 2 * kHour;
  s.wind_u_mps = 5;
  s.wind_v_mps = -2;
  s.wave_height_m = 1.5;
  const auto triples = rdfizer_.TransformWeather(s);
  EXPECT_EQ(triples.size(), 6u);
  const TermId wx = dict_.Find(WeatherIri(3, 4, 2));
  ASSERT_NE(wx, kInvalidTermId);
  EXPECT_TRUE(rdfizer_.tags().count(wx));
}

TEST_F(RdfizerTest, EndToEndFleetTransform) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 5;
  cfg.duration = 20 * kMinute;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  const auto reports = ObserveFleet(traces, obs);
  TripleStore store;
  for (const auto& r : reports) {
    store.AddBatch(rdfizer_.TransformReport(r));
  }
  store.Seal();
  // Every vessel typed; every report became a node.
  const auto vessels =
      store.Match({0, vocab_.p_type, vocab_.c_vessel});
  EXPECT_EQ(vessels.size(), 5u);
  const auto nodes =
      store.Match({0, vocab_.p_type, vocab_.c_position_node});
  EXPECT_EQ(nodes.size(), reports.size());
}

}  // namespace
}  // namespace datacron
