#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/time_utils.h"
#include "sources/adsb_generator.h"
#include "sources/ais_generator.h"
#include "sources/codec.h"
#include "sources/model.h"
#include "sources/replay.h"
#include "sources/weather.h"

namespace datacron {
namespace {

AisGeneratorConfig SmallFleet() {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 10;
  cfg.duration = 30 * kMinute;
  return cfg;
}

// --------------------------------------------------------------- truth

TEST(TruthTraceTest, StateAtInterpolates) {
  TruthTrace trace;
  trace.entity_id = 1;
  trace.tick_ms = 1000;
  trace.start_time = 0;
  PositionReport a;
  a.position = {37.0, 24.0, 0};
  a.timestamp = 0;
  a.speed_mps = 10;
  PositionReport b = a;
  b.position = {37.001, 24.0, 0};
  b.timestamp = 1000;
  trace.samples = {a, b};
  PositionReport mid;
  ASSERT_TRUE(trace.StateAt(500, &mid));
  EXPECT_NEAR(mid.position.lat_deg, 37.0005, 1e-9);
  // Clamps outside.
  PositionReport before, after;
  trace.StateAt(-100, &before);
  EXPECT_EQ(before.position.lat_deg, a.position.lat_deg);
  trace.StateAt(99999, &after);
  EXPECT_EQ(after.position.lat_deg, b.position.lat_deg);
}

// --------------------------------------------------------------- AIS

TEST(AisGeneratorTest, Deterministic) {
  const auto a = GenerateAisFleet(SmallFleet());
  const auto b = GenerateAisFleet(SmallFleet());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].samples.size(), b[i].samples.size());
    EXPECT_EQ(a[i].samples.back(), b[i].samples.back());
  }
}

TEST(AisGeneratorTest, FleetShapeAndIds) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ASSERT_EQ(traces.size(), 10u);
  std::set<EntityId> ids;
  for (const auto& t : traces) {
    ids.insert(t.entity_id);
    EXPECT_EQ(t.domain, Domain::kMaritime);
    EXPECT_GE(t.entity_id, 200000000u);
    EXPECT_EQ(t.samples.size(),
              static_cast<std::size_t>(30 * 60 + 1));  // 1 Hz + fencepost
  }
  EXPECT_EQ(ids.size(), 10u);  // unique
}

TEST(AisGeneratorTest, PositionsStayInRegion) {
  AisGeneratorConfig cfg = SmallFleet();
  const auto traces = GenerateAisFleet(cfg);
  const BoundingBox loose = cfg.region.Inflated(0.1);
  for (const auto& t : traces) {
    for (const auto& s : t.samples) {
      EXPECT_TRUE(loose.Contains(s.position.ll()))
          << ToString(s.position);
    }
  }
}

TEST(AisGeneratorTest, KinematicsAreConsistent) {
  // Distance between consecutive samples matches reported speed * dt.
  AisGeneratorConfig cfg = SmallFleet();
  cfg.num_vessels = 3;
  const auto traces = GenerateAisFleet(cfg);
  for (const auto& t : traces) {
    for (std::size_t i = 1; i < t.samples.size(); i += 37) {
      const auto& prev = t.samples[i - 1];
      const auto& cur = t.samples[i];
      const double d =
          HaversineMeters(prev.position.ll(), cur.position.ll());
      EXPECT_NEAR(d, prev.speed_mps * 1.0, 2.0);
    }
  }
}

TEST(AisGeneratorTest, TurnRateRespected) {
  AisGeneratorConfig cfg = SmallFleet();
  cfg.num_vessels = 5;
  const auto traces = GenerateAisFleet(cfg);
  for (const auto& t : traces) {
    for (std::size_t i = 1; i < t.samples.size(); ++i) {
      EXPECT_LE(CourseDifferenceDeg(t.samples[i].course_deg,
                                    t.samples[i - 1].course_deg),
                cfg.max_turn_rate_deg_s + 1e-6);
    }
  }
}

TEST(AisReportIntervalTest, SpeedDependentCadence) {
  EXPECT_EQ(AisReportIntervalMs(0.1), 180 * kSecond);
  EXPECT_EQ(AisReportIntervalMs(10 * kKnotsToMps), 10 * kSecond);
  EXPECT_EQ(AisReportIntervalMs(18 * kKnotsToMps), 6 * kSecond);
  EXPECT_EQ(AisReportIntervalMs(25 * kKnotsToMps), 2 * kSecond);
}

// --------------------------------------------------------------- observe

TEST(ObserveTest, NoiseFreeObservationMatchesTruth) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  obs.position_noise_m = 0;
  obs.speed_noise_mps = 0;
  obs.course_noise_deg = 0;
  obs.drop_probability = 0;
  obs.gap_probability = 0;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto reports = Observe(traces[0], obs);
  ASSERT_FALSE(reports.empty());
  for (const auto& r : reports) {
    PositionReport truth;
    traces[0].StateAt(r.timestamp, &truth);
    EXPECT_NEAR(
        HaversineMeters(r.position.ll(), truth.position.ll()), 0, 0.5);
  }
}

TEST(ObserveTest, NoiseMagnitudeAsConfigured) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  obs.position_noise_m = 50;
  obs.drop_probability = 0;
  obs.gap_probability = 0;
  obs.fixed_interval_ms = 5 * kSecond;
  const auto reports = Observe(traces[0], obs);
  double total_err = 0;
  for (const auto& r : reports) {
    PositionReport truth;
    traces[0].StateAt(r.timestamp, &truth);
    total_err += HaversineMeters(r.position.ll(), truth.position.ll());
  }
  const double mean_err = total_err / reports.size();
  // |N(0,50)| has mean ~40; allow generous margin.
  EXPECT_GT(mean_err, 15);
  EXPECT_LT(mean_err, 90);
}

TEST(ObserveTest, DropsReduceCount) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig no_drop;
  no_drop.drop_probability = 0;
  no_drop.gap_probability = 0;
  no_drop.fixed_interval_ms = 5 * kSecond;
  ObservationConfig heavy_drop = no_drop;
  heavy_drop.drop_probability = 0.5;
  const auto full = Observe(traces[0], no_drop);
  const auto dropped = Observe(traces[0], heavy_drop);
  EXPECT_LT(dropped.size(), full.size() * 0.7);
  EXPECT_GT(dropped.size(), full.size() * 0.3);
}

TEST(ObserveTest, GapsCreateSilences) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  obs.drop_probability = 0;
  obs.gap_probability = 0.05;
  obs.min_gap = 2 * kMinute;
  obs.max_gap = 5 * kMinute;
  obs.fixed_interval_ms = 5 * kSecond;
  const auto reports = Observe(traces[0], obs);
  DurationMs max_silence = 0;
  for (std::size_t i = 1; i < reports.size(); ++i) {
    max_silence = std::max(
        max_silence, reports[i].timestamp - reports[i - 1].timestamp);
  }
  EXPECT_GE(max_silence, 2 * kMinute);
}

TEST(ObserveFleetTest, MergedStreamTimeOrdered) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  const auto stream = ObserveFleet(traces, obs);
  for (std::size_t i = 1; i < stream.size(); ++i) {
    EXPECT_LE(stream[i - 1].timestamp, stream[i].timestamp);
  }
}

TEST(ObserveFleetTest, JitterProducesOutOfOrderEventTimes) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  obs.out_of_order_jitter_ms = 30 * kSecond;
  const auto stream = ObserveFleet(traces, obs);
  bool any_inversion = false;
  for (std::size_t i = 1; i < stream.size(); ++i) {
    if (stream[i].timestamp < stream[i - 1].timestamp) {
      any_inversion = true;
      break;
    }
  }
  EXPECT_TRUE(any_inversion);
}

// --------------------------------------------------------------- ADS-B

TEST(AdsbGeneratorTest, FlightsClimbCruiseDescend) {
  AdsbGeneratorConfig cfg;
  cfg.num_flights = 10;
  cfg.duration = 90 * kMinute;
  const auto traces = GenerateAdsbTraffic(cfg);
  ASSERT_EQ(traces.size(), 10u);
  int flights_reaching_cruise = 0;
  for (const auto& t : traces) {
    EXPECT_EQ(t.domain, Domain::kAviation);
    double max_alt = 0;
    for (const auto& s : t.samples) {
      max_alt = std::max(max_alt, s.position.alt_m);
      EXPECT_GE(s.position.alt_m, 0.0);
      EXPECT_LE(s.position.alt_m, cfg.cruise_alt_max_m + 1.0);
    }
    if (max_alt >= cfg.cruise_alt_min_m - 1.0) ++flights_reaching_cruise;
    // Starts on the ground.
    EXPECT_LT(t.samples.front().position.alt_m, 50.0);
  }
  EXPECT_GT(flights_reaching_cruise, 5);
}

TEST(AdsbGeneratorTest, VerticalRateSignsMatchPhases) {
  AdsbGeneratorConfig cfg;
  cfg.num_flights = 5;
  const auto traces = GenerateAdsbTraffic(cfg);
  for (const auto& t : traces) {
    for (std::size_t i = 1; i + 1 < t.samples.size(); ++i) {
      const auto& s = t.samples[i];
      if (s.vertical_rate_mps > 1) {
        EXPECT_LT(s.position.alt_m, cfg.cruise_alt_max_m);
      }
    }
  }
}

TEST(AdsbGeneratorTest, Deterministic) {
  AdsbGeneratorConfig cfg;
  cfg.num_flights = 4;
  const auto a = GenerateAdsbTraffic(cfg);
  const auto b = GenerateAdsbTraffic(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].samples.size(), b[i].samples.size());
  }
}

// --------------------------------------------------------------- weather

TEST(WeatherTest, DeterministicAndInBuckets) {
  WeatherSource::Config cfg;
  WeatherSource w1(cfg), w2(cfg);
  const LatLon p{36.5, 24.5};
  const TimestampMs t = cfg.start_time + 3 * kHour + 12345;
  const WeatherSample a = w1.At(p, t);
  const WeatherSample b = w2.At(p, t);
  EXPECT_EQ(a.cell, b.cell);
  EXPECT_DOUBLE_EQ(a.wind_u_mps, b.wind_u_mps);
  EXPECT_DOUBLE_EQ(a.wave_height_m, b.wave_height_m);
  // Bucket snapping.
  EXPECT_EQ(a.bucket_start, cfg.start_time + 3 * kHour);
  const WeatherSample c = w1.At(p, t + 5 * kMinute);
  EXPECT_EQ(c.bucket_start, a.bucket_start);
  EXPECT_DOUBLE_EQ(c.wind_u_mps, a.wind_u_mps);
}

TEST(WeatherTest, NonNegativeWaves) {
  WeatherSource::Config cfg;
  WeatherSource w(cfg);
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const WeatherSample s =
        w.At({rng.Uniform(35, 39), rng.Uniform(23, 27)},
             cfg.start_time + rng.UniformInt(0, cfg.duration));
    EXPECT_GE(s.wave_height_m, 0.0);
  }
}

TEST(WeatherTest, MaterializeAllCoversGridTimesBuckets) {
  WeatherSource::Config cfg;
  cfg.duration = 3 * kHour;
  cfg.cell_deg = 1.0;
  WeatherSource w(cfg);
  const auto all = w.MaterializeAll();
  EXPECT_EQ(all.size(), static_cast<std::size_t>(w.grid().CellCount() * 3));
}

// --------------------------------------------------------------- codec

TEST(CodecTest, RoundTripSingle) {
  PositionReport r;
  r.entity_id = 200000123;
  r.domain = Domain::kAviation;
  r.timestamp = 1490054400123;
  r.position = {37.1234567, 24.7654321, 9144.5};
  r.speed_mps = 231.75;
  r.course_deg = 187.25;
  r.vertical_rate_mps = -8.5;
  const auto decoded = DecodeReportCsv(EncodeReportCsv(r));
  ASSERT_TRUE(decoded.ok());
  const PositionReport& d = decoded.value();
  EXPECT_EQ(d.entity_id, r.entity_id);
  EXPECT_EQ(d.domain, r.domain);
  EXPECT_EQ(d.timestamp, r.timestamp);
  EXPECT_NEAR(d.position.lat_deg, r.position.lat_deg, 1e-7);
  EXPECT_NEAR(d.speed_mps, r.speed_mps, 1e-3);
}

TEST(CodecTest, RoundTripBatchWithHeader) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  const auto reports = ObserveFleet(traces, obs);
  const std::string csv = EncodeReportsCsv(reports);
  const auto decoded = DecodeReportsCsv(csv);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().size(), reports.size());
  for (std::size_t i = 0; i < reports.size(); i += 101) {
    EXPECT_EQ(decoded.value()[i].entity_id, reports[i].entity_id);
    EXPECT_EQ(decoded.value()[i].timestamp, reports[i].timestamp);
  }
}

TEST(CodecTest, RejectsMalformed) {
  EXPECT_FALSE(DecodeReportCsv("not,enough,fields").ok());
  EXPECT_FALSE(
      DecodeReportCsv("1,maritime,abc,37,24,0,1,2,3").ok());
  EXPECT_FALSE(
      DecodeReportCsv("1,submarine,1000,37,24,0,1,2,3").ok());
  EXPECT_FALSE(
      DecodeReportCsv("1,maritime,1000,999,24,0,1,2,3").ok());  // bad lat
}

// --------------------------------------------------------------- replay

TEST(ReplayerTest, DeliversAllInOrder) {
  const auto traces = GenerateAisFleet(SmallFleet());
  ObservationConfig obs;
  obs.out_of_order_jitter_ms = 60 * kSecond;  // scrambled input
  auto reports = ObserveFleet(traces, obs);
  const std::size_t n = reports.size();
  Replayer replayer(std::move(reports));  // as-fast-as-possible
  PositionReport r;
  std::size_t count = 0;
  TimestampMs prev = INT64_MIN;
  while (replayer.Next(&r)) {
    EXPECT_GE(r.timestamp, prev);  // replayer re-sorts
    prev = r.timestamp;
    ++count;
  }
  EXPECT_EQ(count, n);
}

TEST(ReplayerTest, PacedReplayRespectsSpeedup) {
  // 2 simulated seconds at 100x => ~20 ms wall.
  std::vector<PositionReport> reports(3);
  reports[0].timestamp = 0;
  reports[1].timestamp = 1000;
  reports[2].timestamp = 2000;
  Replayer replayer(reports, /*speedup=*/100.0);
  PositionReport r;
  Stopwatch timer;
  while (replayer.Next(&r)) {
  }
  const double wall_ms = timer.ElapsedMillis();
  EXPECT_GE(wall_ms, 15.0);
  EXPECT_LT(wall_ms, 500.0);  // generous upper bound for slow CI
}

TEST(ReplayerTest, ResetRestarts) {
  std::vector<PositionReport> reports(3);
  reports[0].timestamp = 10;
  reports[1].timestamp = 20;
  reports[2].timestamp = 30;
  Replayer replayer(reports);
  PositionReport r;
  EXPECT_TRUE(replayer.Next(&r));
  replayer.Reset();
  std::size_t count = 0;
  while (replayer.Next(&r)) ++count;
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace datacron
