// End-to-end integration tests of the DatacronEngine facade: the full
// paper architecture wired together over a simulated fleet.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "datacron/engine.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

DatacronEngine::Config EngineConfig() {
  DatacronEngine::Config cfg;
  cfg.areas.push_back(NamedArea{
      "port_alpha", Polygon::Rectangle(BoundingBox::Of(36, 24, 36.5, 24.5))});
  return cfg;
}

std::vector<PositionReport> FleetStream(std::size_t vessels,
                                        DurationMs duration) {
  AisGeneratorConfig fleet;
  fleet.num_vessels = vessels;
  fleet.duration = duration;
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  return ObserveFleet(GenerateAisFleet(fleet), obs);
}

TEST(EngineTest, IngestsFullStreamAndTracksEverything) {
  DatacronEngine engine(EngineConfig());
  const auto stream = FleetStream(15, 30 * kMinute);
  std::vector<Event> all_events;
  for (const auto& r : stream) {
    const auto events = engine.Ingest(r);
    all_events.insert(all_events.end(), events.begin(), events.end());
  }
  const auto final_events = engine.Finish();
  all_events.insert(all_events.end(), final_events.begin(),
                    final_events.end());

  EXPECT_EQ(engine.reports_ingested(), stream.size());
  EXPECT_EQ(engine.trajectories().EntityCount(), 15u);
  EXPECT_EQ(engine.trajectories().TotalPoints(), stream.size());
  // Synopses compress: far fewer critical points than reports.
  EXPECT_GT(engine.critical_points(), 0u);
  EXPECT_LT(engine.critical_points(), stream.size() / 2);
  // Transformation produced triples for the critical points.
  EXPECT_GT(engine.triples().size(), engine.critical_points() * 5);
}

TEST(EngineTest, StoreIsQueryable) {
  DatacronEngine engine(EngineConfig());
  const auto stream = FleetStream(10, 20 * kMinute);
  for (const auto& r : stream) engine.Ingest(r);
  engine.Finish();

  // Partition + query the engine's triples end to end.
  auto scheme = HilbertPartitioner::Build(4, &engine.rdfizer()->tags(),
                                          engine.rdfizer()->grid());
  PartitionedRdfStore store;
  store.Load(engine.triples(), *scheme, engine.rdfizer()->grid(),
             engine.vocab().p_next_node);
  QueryEngine qe(&store, engine.rdfizer());
  QueryBuilder qb;
  qb.Where("v", engine.vocab().p_type, engine.vocab().c_vessel);
  const auto rs = qe.ExecuteGlobal(qb.Build());
  EXPECT_EQ(rs.rows.size(), 10u);
}

TEST(EngineTest, LatenciesAreMilliseconds) {
  DatacronEngine engine(EngineConfig());
  const auto stream = FleetStream(10, 20 * kMinute);
  for (const auto& r : stream) engine.Ingest(r);
  const auto& lat = engine.latencies();
  EXPECT_EQ(lat.total_ms.count(), stream.size());
  // The paper's operational requirement: per-tuple latency in (fractions
  // of) milliseconds. Require p99 under 10 ms on any sane machine.
  EXPECT_LT(lat.total_ms.p99(), 10.0);
  EXPECT_GT(lat.total_ms.Max(), 0.0);
}

TEST(EngineTest, AreaEventsForConfiguredAreas) {
  DatacronEngine engine(EngineConfig());
  // Drive one vessel straight through port_alpha.
  std::vector<Event> events;
  GeoPoint pos{36.25, 23.8, 0};
  // 700 steps x 15 s at 8 m/s = 84 km east: enters at lon 24, exits
  // past lon 24.5.
  for (int i = 0; i < 700; ++i) {
    PositionReport r;
    r.entity_id = 1;
    r.timestamp = i * 15 * kSecond;
    r.position = pos;
    r.speed_mps = 8;
    r.course_deg = 90;
    const auto evs = engine.Ingest(r);
    events.insert(events.end(), evs.begin(), evs.end());
    pos = DeadReckon(pos, 90, 8, 0, 15);
  }
  int entries = 0, exits = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kAreaEntry) ++entries;
    if (e.kind == EventKind::kAreaExit) ++exits;
  }
  EXPECT_EQ(entries, 1);
  EXPECT_EQ(exits, 1);
}

TEST(EngineTest, RdfizeAllReportsProducesMoreTriples) {
  auto cfg_synopsis = EngineConfig();
  auto cfg_all = EngineConfig();
  cfg_all.rdfize_all_reports = true;
  DatacronEngine synopsis_engine(cfg_synopsis);
  DatacronEngine full_engine(cfg_all);
  const auto stream = FleetStream(5, 20 * kMinute);
  for (const auto& r : stream) {
    synopsis_engine.Ingest(r);
    full_engine.Ingest(r);
  }
  synopsis_engine.Finish();
  full_engine.Finish();
  // Both paths additionally carry episode triples, so the raw-report
  // blowup is measured above a 2x floor rather than the ~8x of the pure
  // node-triple comparison.
  EXPECT_GT(full_engine.triples().size(),
            2 * synopsis_engine.triples().size());
}

TEST(EngineTest, SemanticEpisodesProduced) {
  DatacronEngine engine(EngineConfig());
  AisGeneratorConfig fleet;
  fleet.num_vessels = 6;
  fleet.duration = kHour;
  fleet.stop_probability = 0.5;
  fleet.min_dwell = 10 * kMinute;
  ObservationConfig obs;
  obs.fixed_interval_ms = 15 * kSecond;
  for (const auto& r : ObserveFleet(GenerateAisFleet(fleet), obs)) {
    engine.Ingest(r);
  }
  engine.Finish();
  ASSERT_FALSE(engine.episodes().empty());
  // Every entity has at least one episode and episode triples exist.
  std::set<EntityId> episode_entities;
  for (const Episode& e : engine.episodes()) {
    episode_entities.insert(e.entity);
    EXPECT_LE(e.start_time, e.end_time);
  }
  EXPECT_EQ(episode_entities.size(), 6u);
  const TripleStore store = engine.BuildStore();
  const auto episodes_in_store = store.Match(
      {0, engine.vocab().p_type, engine.vocab().c_episode});
  EXPECT_EQ(episodes_in_store.size(), engine.episodes().size());
}

TEST(EngineTest, GapAndSpeedAnomalyDetectorsWired) {
  DatacronEngine::Config cfg = EngineConfig();
  cfg.gap.gap_threshold = 5 * kMinute;
  DatacronEngine engine(cfg);
  // A vessel with a 20-minute silence then a speed spike.
  std::vector<Event> events;
  GeoPoint pos{36.3, 24.3, 0};
  TimestampMs t = 0;
  for (int i = 0; i < 60; ++i) {
    PositionReport r;
    r.entity_id = 5;
    r.timestamp = t;
    r.position = pos;
    r.speed_mps = 7.0;
    r.course_deg = 90;
    const auto evs = engine.Ingest(r);
    events.insert(events.end(), evs.begin(), evs.end());
    pos = DeadReckon(pos, 90, 7, 0, 20);
    t += 20 * kSecond;
    if (i == 40) t += 20 * kMinute;  // the silence
  }
  int gaps = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kGap) ++gaps;
  }
  EXPECT_EQ(gaps, 1);
}

TEST(EngineTest, CapacityAndHotspotMonitorsWired) {
  DatacronEngine::Config cfg = EngineConfig();
  cfg.sectors.push_back(CapacityMonitor::Sector{
      "dense_sector",
      Polygon::Rectangle(BoundingBox::Of(35.0, 23.0, 39.0, 27.0)), 3});
  cfg.hotspot_window = 10 * kMinute;
  cfg.hotspot.zscore_threshold = 2.0;
  DatacronEngine engine(cfg);
  std::vector<Event> events;
  for (const auto& r : FleetStream(15, 30 * kMinute)) {
    const auto evs = engine.Ingest(r);
    events.insert(events.end(), evs.begin(), evs.end());
  }
  const auto final_events = engine.Finish();
  events.insert(events.end(), final_events.begin(), final_events.end());
  int capacity = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kCapacityWarning) ++capacity;
  }
  // 15 vessels in a sector of capacity 3: warnings must fire.
  EXPECT_GT(capacity, 0);
}

TEST(EngineTest, PredictorIsLive) {
  DatacronEngine engine(EngineConfig());
  const auto stream = FleetStream(5, 10 * kMinute);
  for (const auto& r : stream) engine.Ingest(r);
  GeoPoint out;
  EXPECT_TRUE(
      engine.predictor().Predict(stream.back().entity_id, kMinute, &out));
}

TEST(EngineTest, BuildStoreSealsAndDeduplicates) {
  DatacronEngine engine(EngineConfig());
  for (const auto& r : FleetStream(5, 10 * kMinute)) engine.Ingest(r);
  engine.Finish();
  const TripleStore store = engine.BuildStore();
  EXPECT_TRUE(store.sealed());
  EXPECT_GT(store.size(), 0u);
  EXPECT_LE(store.size(), engine.triples().size());
}

}  // namespace
}  // namespace datacron
