#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "sources/ais_generator.h"
#include "sources/nmea.h"

namespace datacron {
namespace {

PositionReport SampleReport() {
  PositionReport r;
  r.entity_id = 237456789;  // Greek-flag MMSI range
  r.domain = Domain::kMaritime;
  r.timestamp = 1490054425000;  // :25 within the minute
  r.position = {37.12345, 24.65432, 0};
  r.speed_mps = 14.3 * kKnotsToMps;
  r.course_deg = 213.7;
  return r;
}

TEST(NmeaTest, SentenceFraming) {
  const std::string s = EncodeAivdm(SampleReport());
  EXPECT_EQ(s[0], '!');
  EXPECT_EQ(s.substr(1, 5), "AIVDM");
  EXPECT_NE(s.find("*"), std::string::npos);
  // 168 bits -> 28 armored chars.
  const auto fields = Split(s.substr(0, s.find('*')), ',');
  ASSERT_EQ(fields.size(), 7u);
  EXPECT_EQ(fields[5].size(), 28u);
}

TEST(NmeaTest, RoundTripFields) {
  const PositionReport original = SampleReport();
  const std::string sentence = EncodeAivdm(original);
  const auto decoded = DecodeAivdm(sentence, original.timestamp + 5000);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const PositionReport& d = decoded.value();
  EXPECT_EQ(d.entity_id, original.entity_id);
  // Position quantization: 1/10000 arc-minute ~ 0.19 m.
  EXPECT_NEAR(d.position.lat_deg, original.position.lat_deg, 1e-5);
  EXPECT_NEAR(d.position.lon_deg, original.position.lon_deg, 1e-5);
  // SOG quantization: 0.1 kn.
  EXPECT_NEAR(d.speed_mps, original.speed_mps, 0.1 * kKnotsToMps);
  // COG quantization: 0.1 deg.
  EXPECT_NEAR(d.course_deg, original.course_deg, 0.11);
  // Timestamp: second-of-minute recovered against the receive time.
  EXPECT_EQ(d.timestamp, original.timestamp);
}

TEST(NmeaTest, SouthernWesternHemisphere) {
  PositionReport r = SampleReport();
  r.position = {-33.85, -70.6, 0};  // signed lat/lon
  const auto decoded = DecodeAivdm(EncodeAivdm(r), r.timestamp);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(decoded.value().position.lat_deg, -33.85, 1e-5);
  EXPECT_NEAR(decoded.value().position.lon_deg, -70.6, 1e-5);
}

TEST(NmeaTest, AnchoredVesselNavStatus) {
  PositionReport r = SampleReport();
  r.speed_mps = 0.0;
  const auto decoded = DecodeAivdm(EncodeAivdm(r), r.timestamp);
  ASSERT_TRUE(decoded.ok());
  EXPECT_DOUBLE_EQ(decoded.value().speed_mps, 0.0);
}

TEST(NmeaTest, FastVesselSogCap) {
  PositionReport r = SampleReport();
  r.speed_mps = 200 * kKnotsToMps;  // beyond the 102.2 kn field cap
  const auto decoded = DecodeAivdm(EncodeAivdm(r), r.timestamp);
  ASSERT_TRUE(decoded.ok());
  EXPECT_NEAR(decoded.value().speed_mps, 102.2 * kKnotsToMps, 0.1);
}

TEST(NmeaTest, ChecksumValidation) {
  std::string s = EncodeAivdm(SampleReport());
  // Corrupt one payload character.
  s[20] = s[20] == 'A' ? 'B' : 'A';
  EXPECT_FALSE(DecodeAivdm(s, 0).ok());
}

TEST(NmeaTest, RejectsGarbage) {
  EXPECT_FALSE(DecodeAivdm("", 0).ok());
  EXPECT_FALSE(DecodeAivdm("$GPGGA,foo*00", 0).ok());
  EXPECT_FALSE(DecodeAivdm("!AIVDM,2,1,,A,blah,0*00", 0).ok());
  EXPECT_FALSE(DecodeAivdm("!AIVDM,nochecksum", 0).ok());
}

TEST(NmeaTest, StreamRoundTripOnFleet) {
  AisGeneratorConfig cfg;
  cfg.num_vessels = 10;
  cfg.duration = 10 * kMinute;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto reports = ObserveFleet(traces, obs);
  const std::string feed = EncodeAivdmStream(reports);

  // Decode each minute against a receive time inside that minute; here
  // all reports are within a 10-minute window so decode per report.
  AivdmDecodeStats stats;
  std::size_t i = 0;
  std::size_t matches = 0;
  std::size_t start = 0;
  while (start < feed.size() && i < reports.size()) {
    std::size_t end = feed.find('\n', start);
    if (end == std::string::npos) end = feed.size();
    const std::string line = feed.substr(start, end - start);
    start = end + 1;
    const auto decoded = DecodeAivdm(line, reports[i].timestamp);
    ASSERT_TRUE(decoded.ok());
    if (decoded.value().entity_id == reports[i].entity_id &&
        decoded.value().timestamp == reports[i].timestamp) {
      ++matches;
    }
    ++i;
  }
  EXPECT_EQ(matches, reports.size());
  (void)stats;
}

TEST(NmeaTest, StreamDecoderSkipsCorruptLines) {
  const auto r = SampleReport();
  std::string feed = EncodeAivdm(r) + "\ngarbage line\n" + EncodeAivdm(r) +
                     "\n!AIVDM,1,1,,A,zzz,0*00\n";
  AivdmDecodeStats stats;
  const auto decoded = DecodeAivdmStream(feed, r.timestamp, &stats);
  EXPECT_EQ(decoded.size(), 2u);
  EXPECT_EQ(stats.decoded, 2u);
  EXPECT_EQ(stats.failed, 2u);
}

TEST(NmeaStaticTest, NameRoundTrip) {
  StaticInfo info;
  info.entity_id = 237456789;
  info.name = "AEGEAN PEARL 7";
  const std::string s = EncodeAivdmStatic(info);
  EXPECT_EQ(s.substr(0, 6), "!AIVDM");
  const auto decoded = DecodeAivdmStatic(s);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().entity_id, info.entity_id);
  EXPECT_EQ(decoded.value().name, info.name);
}

TEST(NmeaStaticTest, LowercaseUpcased) {
  StaticInfo info;
  info.entity_id = 1;
  info.name = "blue bird";
  const auto decoded = DecodeAivdmStatic(EncodeAivdmStatic(info));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().name, "BLUE BIRD");
}

TEST(NmeaStaticTest, LongNameTruncatedAt20) {
  StaticInfo info;
  info.entity_id = 1;
  info.name = "THIS NAME IS WAY TOO LONG FOR AIS";
  const auto decoded = DecodeAivdmStatic(EncodeAivdmStatic(info));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().name.size(), 20u);
  EXPECT_EQ(decoded.value().name, "THIS NAME IS WAY TOO");
}

TEST(NmeaStaticTest, PositionSentenceRejected) {
  const auto pos = EncodeAivdm(SampleReport());
  EXPECT_FALSE(DecodeAivdmStatic(pos).ok());
}

TEST(NmeaStaticTest, EmptyName) {
  StaticInfo info;
  info.entity_id = 5;
  const auto decoded = DecodeAivdmStatic(EncodeAivdmStatic(info));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().name, "");
}

class NmeaPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NmeaPropertyTest, RandomReportsRoundTrip) {
  Rng rng(7100 + GetParam());
  PositionReport r;
  r.entity_id = static_cast<EntityId>(rng.UniformInt(1, 999999999));
  r.domain = Domain::kMaritime;
  r.timestamp = 1490000000000 + rng.UniformInt(0, 86400000);
  r.position = {rng.Uniform(-89, 89), rng.Uniform(-179.9, 179.9), 0};
  r.speed_mps = rng.Uniform(0, 50 * kKnotsToMps);
  r.course_deg = rng.Uniform(0, 359.9);
  const auto decoded = DecodeAivdm(EncodeAivdm(r), r.timestamp);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().entity_id, r.entity_id);
  EXPECT_NEAR(decoded.value().position.lat_deg, r.position.lat_deg, 1e-5);
  EXPECT_NEAR(decoded.value().position.lon_deg, r.position.lon_deg, 1e-5);
  EXPECT_NEAR(decoded.value().speed_mps, r.speed_mps,
              0.06 * kKnotsToMps + 1e-9);
  EXPECT_NEAR(decoded.value().course_deg, r.course_deg, 0.06);
  EXPECT_EQ(decoded.value().timestamp, r.timestamp / 1000 * 1000);
}

INSTANTIATE_TEST_SUITE_P(Sweep, NmeaPropertyTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace datacron
