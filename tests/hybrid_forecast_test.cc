#include <gtest/gtest.h>

#include "forecast/hybrid.h"
#include "sources/ais_generator.h"

namespace datacron {
namespace {

PositionReport Moving(EntityId id, TimestampMs t, const GeoPoint& pos,
                      double speed, double course) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = pos;
  r.speed_mps = speed;
  r.course_deg = course;
  return r;
}

Trajectory EastLane() {
  Trajectory route;
  route.entity_id = 500;
  GeoPoint pos{36.5, 24.0, 0};
  for (int i = 0; i < 120; ++i) {
    route.points.push_back(Moving(500, i * 30000, pos, 10, 90));
    pos = DeadReckon(pos, 90, 10, 0, 30.0);
  }
  return route;
}

TEST(HybridPredictorTest, ShortHorizonUsesKalman) {
  HybridPredictor hybrid;
  hybrid.Train({EastLane()});
  // Feed a straight track; at a 1-minute horizon the hybrid must agree
  // with its Kalman component, not the route walker.
  GeoPoint pos{36.5, 24.1, 0};
  for (int i = 0; i < 30; ++i) {
    hybrid.Observe(Moving(1, i * 10000, pos, 10, 90));
    pos = DeadReckon(pos, 90, 10, 0, 10.0);
  }
  GeoPoint hybrid_pred, kalman_pred;
  ASSERT_TRUE(hybrid.Predict(1, kMinute, &hybrid_pred));
  ASSERT_TRUE(hybrid.kalman().Predict(1, kMinute, &kalman_pred));
  EXPECT_NEAR(HaversineMeters(hybrid_pred.ll(), kalman_pred.ll()), 0, 0.1);
}

TEST(HybridPredictorTest, LongHorizonUsesRoute) {
  HybridPredictor hybrid;
  hybrid.Train({EastLane()});
  GeoPoint pos{36.5, 24.1, 0};
  for (int i = 0; i < 30; ++i) {
    hybrid.Observe(Moving(1, i * 10000, pos, 10, 90));
    pos = DeadReckon(pos, 90, 10, 0, 10.0);
  }
  GeoPoint hybrid_pred, route_pred;
  ASSERT_TRUE(hybrid.Predict(1, 20 * kMinute, &hybrid_pred));
  ASSERT_TRUE(hybrid.route().Predict(1, 20 * kMinute, &route_pred));
  EXPECT_NEAR(HaversineMeters(hybrid_pred.ll(), route_pred.ll()), 0, 0.1);
}

TEST(HybridPredictorTest, UnknownEntityFails) {
  HybridPredictor hybrid;
  GeoPoint out;
  EXPECT_FALSE(hybrid.Predict(404, kMinute, &out));
}

TEST(HybridPredictorTest, UntrainedFallsBackGracefully) {
  HybridPredictor hybrid;  // no Train()
  GeoPoint pos{36.5, 24.5, 0};
  for (int i = 0; i < 20; ++i) {
    hybrid.Observe(Moving(1, i * 10000, pos, 8, 45));
    pos = DeadReckon(pos, 45, 8, 0, 10.0);
  }
  GeoPoint out;
  EXPECT_TRUE(hybrid.Predict(1, kMinute, &out));
  EXPECT_TRUE(hybrid.Predict(1, 30 * kMinute, &out));
}

}  // namespace
}  // namespace datacron
