#include <gtest/gtest.h>

#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"
#include "stream/pipeline.h"
#include "trajectory/episodes.h"

namespace datacron {
namespace {

CriticalPoint Cp(EntityId id, CriticalPointType type, TimestampMs t,
                 double lat, double lon, double speed = 6.0) {
  CriticalPoint cp;
  cp.type = type;
  cp.report.entity_id = id;
  cp.report.timestamp = t;
  cp.report.position = {lat, lon, 0};
  cp.report.speed_mps = speed;
  return cp;
}

TEST(EpisodeBuilderTest, MoveStopMoveSequence) {
  EpisodeBuilder builder;
  const std::vector<CriticalPoint> synopsis = {
      Cp(1, CriticalPointType::kTrajectoryStart, 0, 36.0, 24.0),
      Cp(1, CriticalPointType::kTurningPoint, 10 * kMinute, 36.05, 24.0),
      Cp(1, CriticalPointType::kStopStart, 20 * kMinute, 36.1, 24.0, 0.1),
      Cp(1, CriticalPointType::kStopEnd, 50 * kMinute, 36.1, 24.0, 1.0),
      Cp(1, CriticalPointType::kTrajectoryEnd, 70 * kMinute, 36.2, 24.0),
  };
  const auto episodes = builder.Build(synopsis);
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[0].kind, EpisodeKind::kMove);
  EXPECT_EQ(episodes[0].start_time, 0);
  EXPECT_EQ(episodes[0].end_time, 20 * kMinute);
  EXPECT_EQ(episodes[1].kind, EpisodeKind::kStop);
  EXPECT_EQ(episodes[1].Duration(), 30 * kMinute);
  EXPECT_EQ(episodes[2].kind, EpisodeKind::kMove);
  // Move path length accumulates via the turning point.
  EXPECT_GT(episodes[0].path_m, 10000);
}

TEST(EpisodeBuilderTest, GapEpisode) {
  EpisodeBuilder builder;
  const auto episodes = builder.Build({
      Cp(1, CriticalPointType::kTrajectoryStart, 0, 36.0, 24.0),
      Cp(1, CriticalPointType::kGapStart, 10 * kMinute, 36.05, 24.0),
      Cp(1, CriticalPointType::kGapEnd, 40 * kMinute, 36.3, 24.0),
      Cp(1, CriticalPointType::kTrajectoryEnd, 50 * kMinute, 36.35, 24.0),
  });
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[1].kind, EpisodeKind::kGap);
  EXPECT_EQ(episodes[1].Duration(), 30 * kMinute);
  EXPECT_GT(episodes[1].displacement_m, 20000);  // moved while dark
}

TEST(EpisodeBuilderTest, StopAnnotatedWithArea) {
  std::vector<NamedArea> areas = {
      {"port_x", Polygon::Rectangle(BoundingBox::Of(36.05, 23.95, 36.15,
                                                    24.05))}};
  EpisodeBuilder builder(areas);
  const auto episodes = builder.Build({
      Cp(1, CriticalPointType::kTrajectoryStart, 0, 36.0, 24.0),
      Cp(1, CriticalPointType::kStopStart, 10 * kMinute, 36.1, 24.0, 0.1),
      Cp(1, CriticalPointType::kStopEnd, 30 * kMinute, 36.1, 24.0, 1.0),
      Cp(1, CriticalPointType::kTrajectoryEnd, 40 * kMinute, 36.2, 24.0),
  });
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[1].kind, EpisodeKind::kStop);
  EXPECT_EQ(episodes[1].area, "port_x");
  EXPECT_EQ(episodes[0].area, "");  // move started outside
}

TEST(EpisodeBuilderTest, InterleavedEntities) {
  EpisodeBuilder builder;
  std::vector<Episode> out;
  builder.Process(Cp(1, CriticalPointType::kTrajectoryStart, 0, 36, 24),
                  &out);
  builder.Process(Cp(2, CriticalPointType::kTrajectoryStart, 0, 37, 25),
                  &out);
  builder.Process(
      Cp(1, CriticalPointType::kStopStart, 1000, 36.01, 24, 0.1), &out);
  builder.Process(
      Cp(2, CriticalPointType::kTrajectoryEnd, 2000, 37.01, 25), &out);
  builder.Flush(&out);
  // Entity 1: move + open stop (flushed). Entity 2: move.
  ASSERT_EQ(out.size(), 3u);
  int entity1 = 0, entity2 = 0;
  for (const Episode& e : out) {
    if (e.entity == 1) ++entity1;
    if (e.entity == 2) ++entity2;
  }
  EXPECT_EQ(entity1, 2);
  EXPECT_EQ(entity2, 1);
}

TEST(EpisodeBuilderTest, StartsStoppedOpensStop) {
  EpisodeBuilder builder;
  const auto episodes = builder.Build({
      Cp(1, CriticalPointType::kTrajectoryStart, 0, 36, 24, 0.1),
      Cp(1, CriticalPointType::kStopEnd, 10 * kMinute, 36, 24, 1.5),
      Cp(1, CriticalPointType::kTrajectoryEnd, 20 * kMinute, 36.05, 24),
  });
  ASSERT_EQ(episodes.size(), 2u);
  EXPECT_EQ(episodes[0].kind, EpisodeKind::kStop);
  EXPECT_EQ(episodes[1].kind, EpisodeKind::kMove);
}

TEST(EpisodeBuilderTest, EndToEndFromDetector) {
  // Fleet with dwells: the synopsis-to-episode chain on real streams.
  AisGeneratorConfig cfg;
  cfg.num_vessels = 8;
  cfg.duration = kHour;
  cfg.stop_probability = 0.5;
  cfg.min_dwell = 10 * kMinute;
  const auto traces = GenerateAisFleet(cfg);
  ObservationConfig obs;
  obs.fixed_interval_ms = 10 * kSecond;
  const auto stream = ObserveFleet(traces, obs);
  CriticalPointDetector detector;
  const auto synopsis = pipeline::RunBatch(&detector, stream);
  EpisodeBuilder builder;
  const auto episodes = builder.Build(synopsis);
  ASSERT_FALSE(episodes.empty());
  // Episodes per entity must tile the trajectory: consecutive episodes
  // share boundary timestamps.
  std::map<EntityId, std::vector<const Episode*>> per_entity;
  for (const Episode& e : episodes) per_entity[e.entity].push_back(&e);
  for (const auto& [id, eps] : per_entity) {
    for (std::size_t i = 1; i < eps.size(); ++i) {
      EXPECT_EQ(eps[i - 1]->end_time, eps[i]->start_time)
          << "entity " << id << " episode " << i;
    }
  }
}

TEST(EpisodeBuilderTest, ToStringReadable) {
  Episode e;
  e.entity = 7;
  e.kind = EpisodeKind::kStop;
  e.start_time = 1490054400000;
  e.end_time = e.start_time + 20 * kMinute;
  e.area = "anchorage";
  const std::string s = ToString(e);
  EXPECT_NE(s.find("stop"), std::string::npos);
  EXPECT_NE(s.find("20min"), std::string::npos);
  EXPECT_NE(s.find("@anchorage"), std::string::npos);
}

TEST(EpisodeRdfTest, TransformEpisodeProducesTaggedResource) {
  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer rdfizer(Rdfizer::Config{}, &dict, &vocab);
  Episode e;
  e.entity = 9;
  e.kind = EpisodeKind::kStop;
  e.start_time = rdfizer.config().epoch + 90 * kMinute;
  e.end_time = e.start_time + 10 * kMinute;
  e.start_pos = {36.5, 24.5, 0};
  e.end_pos = e.start_pos;
  e.area = "port_x";
  const auto triples = rdfizer.TransformEpisode(e);
  EXPECT_GE(triples.size(), 9u);
  const TermId ep = dict.Find(EpisodeIri(9, e.start_time));
  ASSERT_NE(ep, kInvalidTermId);
  EXPECT_TRUE(rdfizer.tags().count(ep));
  EXPECT_EQ(rdfizer.tags().at(ep).bucket, 1);
  bool in_area = false;
  for (const Triple& t : triples) {
    if (t.s == ep && t.p == vocab.p_within_area) in_area = true;
  }
  EXPECT_TRUE(in_area);
}

}  // namespace
}  // namespace datacron
