// Property test promised in DESIGN.md: the analytic CPA solution must
// agree with brute-force time sampling of the two extrapolated motions,
// across random geometries. Also covers the Kalman filter's statistical
// consistency (innovations bounded by covariance).
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include "cep/cpa.h"
#include "common/rng.h"
#include "common/simd/simd.h"
#include "forecast/kalman.h"

namespace datacron {
namespace {

PositionReport RandomState(Rng* rng, TimestampMs t) {
  PositionReport r;
  r.entity_id = static_cast<EntityId>(rng->UniformInt(1, 1000000));
  r.timestamp = t;
  r.position = {rng->Uniform(35.5, 38.5), rng->Uniform(23.5, 26.5), 0};
  r.speed_mps = rng->Uniform(0.0, 15.0);
  r.course_deg = rng->Uniform(0.0, 360.0);
  return r;
}

/// Brute force: sample both dead-reckoned tracks every second over the
/// window and take the minimum separation.
void BruteForceCpa(const PositionReport& a, const PositionReport& b,
                   double window_s, double* t_min, double* d_min) {
  *d_min = 1e18;
  *t_min = 0;
  const TimestampMs t0 = std::max(a.timestamp, b.timestamp);
  for (double t = 0; t <= window_s; t += 1.0) {
    const double dt_a = static_cast<double>(t0 - a.timestamp) / 1000.0 + t;
    const double dt_b = static_cast<double>(t0 - b.timestamp) / 1000.0 + t;
    const GeoPoint pa =
        DeadReckon(a.position, a.course_deg, a.speed_mps, 0, dt_a);
    const GeoPoint pb =
        DeadReckon(b.position, b.course_deg, b.speed_mps, 0, dt_b);
    const double d = EquirectangularMeters(pa.ll(), pb.ll());
    if (d < *d_min) {
      *d_min = d;
      *t_min = t;
    }
  }
}

class CpaAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(CpaAgreementTest, AnalyticMatchesBruteForce) {
  Rng rng(9000 + GetParam());
  // Same timestamp; pairs within 50 km so the window can contain the CPA.
  PositionReport a = RandomState(&rng, 1000000);
  PositionReport b = RandomState(&rng, 1000000);
  b.position = DeadReckon(a.position, rng.Uniform(0, 360),
                          rng.Uniform(500, 50000), 0, 1.0);

  const CpaResult cpa = ComputeCpa(a, b);
  constexpr double kWindowS = 3600;
  double bf_t = 0, bf_d = 0;
  BruteForceCpa(a, b, kWindowS, &bf_t, &bf_d);

  if (cpa.t_cpa_s < kWindowS - 1) {
    // CPA inside the window: distances agree within the planar/spherical
    // discrepancy and the 1 s sampling granularity.
    const double tol = 5.0 + 0.01 * bf_d + 0.5 * (a.speed_mps + b.speed_mps);
    EXPECT_NEAR(cpa.d_cpa_m, bf_d, tol)
        << "t_cpa=" << cpa.t_cpa_s << " bf_t=" << bf_t;
    // Times agree when the minimum is sharp; a shallow quadratic minimum
    // has a wide flat bottom where +-2 minutes changes separation by
    // meters, so only strongly-converging pairs pin the time down.
    if (cpa.d_now_m - cpa.d_cpa_m > 2000) {
      EXPECT_NEAR(cpa.t_cpa_s, bf_t, 60.0);
    }
  } else {
    // CPA beyond the window: separation must be non-increasing toward the
    // window end, i.e. the brute-force minimum sits at the window edge.
    EXPECT_GT(bf_t, kWindowS - 2);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpaAgreementTest, ::testing::Range(0, 60));

class CpaMisalignedClockTest : public ::testing::TestWithParam<int> {};

TEST_P(CpaMisalignedClockTest, TimestampAlignmentConsistent) {
  // CPA of (a@t, b@t-dt) must equal CPA of (a@t, b-projected-to-t@t).
  Rng rng(9500 + GetParam());
  PositionReport a = RandomState(&rng, 1000000);
  PositionReport b = RandomState(&rng, 1000000 - 60000);  // 60 s older
  b.position = DeadReckon(a.position, rng.Uniform(0, 360),
                          rng.Uniform(1000, 20000), 0, 1.0);

  PositionReport b_aligned = b;
  b_aligned.position =
      DeadReckon(b.position, b.course_deg, b.speed_mps, 0, 60.0);
  b_aligned.timestamp = 1000000;

  const CpaResult raw = ComputeCpa(a, b);
  const CpaResult aligned = ComputeCpa(a, b_aligned);
  EXPECT_NEAR(raw.d_cpa_m, aligned.d_cpa_m, 2.0);
  EXPECT_NEAR(raw.t_cpa_s, aligned.t_cpa_s, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpaMisalignedClockTest,
                         ::testing::Range(0, 30));

// ---------------------------------------------------------------- Kalman

class KalmanConsistencyTest : public ::testing::TestWithParam<int> {};

TEST_P(KalmanConsistencyTest, EstimateErrorBoundedUnderNoise) {
  // On a constant-velocity truth with configured noise levels, the final
  // position estimate error should be well under the raw measurement
  // noise (filtering consistency, run across seeds).
  Rng rng(9900 + GetParam());
  KalmanPredictor::Config cfg;
  cfg.meas_pos_m = 20;
  cfg.meas_vel_mps = 0.5;
  KalmanPredictor kalman(cfg);
  GeoPoint pos{36.5, 24.5, 0};
  const double speed = rng.Uniform(3, 12);
  const double course = rng.Uniform(0, 360);
  for (int i = 0; i < 100; ++i) {
    PositionReport r;
    r.entity_id = 1;
    r.timestamp = i * 10000;
    const LatLon noisy =
        DestinationPoint(pos.ll(), rng.Uniform(0, 360),
                         std::fabs(rng.Gaussian(0, cfg.meas_pos_m)));
    r.position = {noisy.lat_deg, noisy.lon_deg, 0};
    r.speed_mps = std::max(0.0, speed + rng.Gaussian(0, cfg.meas_vel_mps));
    r.course_deg = course + rng.Gaussian(0, 2);
    kalman.Observe(r);
    pos = DeadReckon(pos, course, speed, 0, 10.0);
  }
  GeoPoint est;
  double ve, vn;
  ASSERT_TRUE(kalman.CurrentEstimate(1, &est, &ve, &vn));
  const GeoPoint truth = DeadReckon(pos, course, -speed, 0, 10.0);
  EXPECT_LT(HaversineMeters(est.ll(), truth.ll()), cfg.meas_pos_m * 1.5);
  // Velocity estimate within a few tenths of the truth.
  const double est_speed = std::sqrt(ve * ve + vn * vn);
  EXPECT_NEAR(est_speed, speed, 1.5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KalmanConsistencyTest,
                         ::testing::Range(0, 20));

// ----------------------------------------------------------- SIMD batch

std::uint64_t Bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void ExpectBitEqual(const CpaResult& a, const CpaResult& b,
                    const std::string& what) {
  EXPECT_EQ(Bits(a.t_cpa_s), Bits(b.t_cpa_s)) << what;
  EXPECT_EQ(Bits(a.d_cpa_m), Bits(b.d_cpa_m)) << what;
  EXPECT_EQ(Bits(a.d_alt_m), Bits(b.d_alt_m)) << what;
  EXPECT_EQ(Bits(a.d_now_m), Bits(b.d_now_m)) << what;
}

/// Fleet with deliberate pathologies: NaN speed, near-pole, antimeridian
/// straddles, misaligned timestamps.
FleetSnapshot AdversarialFleet(Rng* rng, std::size_t rows) {
  FleetSnapshot fleet;
  for (std::size_t i = 0; i < rows; ++i) {
    PositionReport r = RandomState(rng, 1000000 - rng->UniformInt(0, 90) * 1000);
    switch (i % 5) {
      case 1:
        r.position.lat_deg = rng->Uniform(89.0, 90.0);
        break;
      case 2:
        r.position.lon_deg =
            (i % 2 ? 1 : -1) * rng->Uniform(179.9, 180.0);
        break;
      case 3:
        r.speed_mps = std::nan("");
        break;
      case 4:
        r.speed_mps = 0.0;  // exercises the no-relative-motion branch
        r.course_deg = 0.0;
        break;
      default:
        break;
    }
    r.position.alt_m = rng->Uniform(0, 10000);
    r.vertical_rate_mps = rng->Uniform(-10, 10);
    fleet.Append(r);
  }
  return fleet;
}

class CpaBatchEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CpaBatchEquivalenceTest, BatchMatchesSingleAndScalarDispatchBitwise) {
  Rng rng(16000 + GetParam());
  const std::size_t w = static_cast<std::size_t>(simd::kNativeWidth);
  // Every batch length through several vectors, covering ragged tails.
  for (std::size_t n = 1; n <= 3 * w + 1; ++n) {
    const FleetSnapshot fleet =
        AdversarialFleet(&rng, std::max<std::size_t>(4, n / 2 + 2));
    std::vector<CpaPair> pairs(n);
    for (std::size_t i = 0; i < n; ++i) {
      pairs[i].a_row =
          static_cast<std::uint32_t>(rng.UniformInt(0, fleet.size() - 1));
      pairs[i].b_row =
          static_cast<std::uint32_t>(rng.UniformInt(0, fleet.size() - 1));
    }
    std::vector<CpaResult> native(n), scalar(n);
    ComputeCpaBatch(fleet, pairs.data(), n, native.data(),
                    SimdDispatch::kNative);
    ComputeCpaBatch(fleet, pairs.data(), n, scalar.data(),
                    SimdDispatch::kScalarOnly);
    for (std::size_t i = 0; i < n; ++i) {
      const std::string tag =
          "n=" + std::to_string(n) + " i=" + std::to_string(i);
      // Native lanes == forced-scalar lanes, bit for bit.
      ExpectBitEqual(native[i], scalar[i], "dispatch " + tag);
      // Batch == the one-pair snapshot entry point.
      ExpectBitEqual(native[i],
                     ComputeCpa(fleet, pairs[i].a_row, pairs[i].b_row),
                     "single " + tag);
      // Batch == the report-based entry point (the pre-SoA API).
      ExpectBitEqual(native[i],
                     ComputeCpa(fleet.ReportAt(pairs[i].a_row),
                                fleet.ReportAt(pairs[i].b_row)),
                     "report " + tag);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CpaBatchEquivalenceTest,
                         ::testing::Range(0, 15));

// --------------------------------------------- Kalman backend equality

class KalmanBackendEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(KalmanBackendEquivalenceTest, ForcedScalarBitIdenticalToNative) {
  // The matrix kernels accumulate in the same order at every lane width,
  // so the scalar-backend filter must reproduce the native one exactly —
  // state, predictions and estimates — over a multi-entity stream with
  // out-of-order reports.
  Rng rng(17000 + GetParam());
  KalmanPredictor::Config native_cfg;
  KalmanPredictor::Config scalar_cfg;
  scalar_cfg.force_scalar_simd = true;
  KalmanPredictor native(native_cfg);
  KalmanPredictor scalar(scalar_cfg);
  std::vector<PositionReport> stream;
  for (int i = 0; i < 200; ++i) {
    PositionReport r = RandomState(&rng, 1000000 + i * 5000);
    r.entity_id = static_cast<EntityId>(1 + i % 7);
    if (i % 23 == 0) r.timestamp -= 60000;  // out-of-order sample
    if (i % 31 == 0) {
      r.domain = Domain::kAviation;
      r.position.alt_m = rng.Uniform(1000, 11000);
      r.vertical_rate_mps = rng.Uniform(-15, 15);
    }
    stream.push_back(r);
  }
  native.ObserveBatch(stream);
  for (const PositionReport& r : stream) scalar.Observe(r);
  ASSERT_EQ(native.fleet_size(), scalar.fleet_size());
  for (EntityId id = 1; id <= 7; ++id) {
    GeoPoint pn, ps;
    double ven, vnn, ves, vns;
    ASSERT_TRUE(native.CurrentEstimate(id, &pn, &ven, &vnn));
    ASSERT_TRUE(scalar.CurrentEstimate(id, &ps, &ves, &vns));
    EXPECT_EQ(Bits(pn.lat_deg), Bits(ps.lat_deg)) << "entity " << id;
    EXPECT_EQ(Bits(pn.lon_deg), Bits(ps.lon_deg)) << "entity " << id;
    EXPECT_EQ(Bits(ven), Bits(ves)) << "entity " << id;
    EXPECT_EQ(Bits(vnn), Bits(vns)) << "entity " << id;
    GeoPoint fn, fs;
    ASSERT_TRUE(native.Predict(id, 600000, &fn));
    ASSERT_TRUE(scalar.Predict(id, 600000, &fs));
    EXPECT_EQ(Bits(fn.lat_deg), Bits(fs.lat_deg)) << "entity " << id;
    EXPECT_EQ(Bits(fn.lon_deg), Bits(fs.lon_deg)) << "entity " << id;
    EXPECT_EQ(Bits(fn.alt_m), Bits(fs.alt_m)) << "entity " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KalmanBackendEquivalenceTest,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace datacron
