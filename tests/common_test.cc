#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>

#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"
#include "common/time_utils.h"

namespace datacron {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kUnimplemented); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

// ---------------------------------------------------------------- Strings

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto fields = Split("a,,b", ',');
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
}

TEST(StringsTest, SplitSingleField) {
  const auto fields = Split("abc", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "abc");
}

TEST(StringsTest, TrimBothEnds) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, JoinRoundTripsSplit) {
  const std::vector<std::string> parts = {"a", "bb", "ccc"};
  EXPECT_EQ(Join(parts, ","), "a,bb,ccc");
  EXPECT_EQ(Split(Join(parts, ";"), ';'), parts);
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("node:123", "node:"));
  EXPECT_FALSE(StartsWith("no", "node:"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringsTest, ParseDoubleStrict) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.25", &v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_TRUE(ParseDouble("-1e3", &v));
  EXPECT_DOUBLE_EQ(v, -1000.0);
  EXPECT_FALSE(ParseDouble("3.25x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("abc", &v));
}

TEST(StringsTest, ParseInt64Strict) {
  std::int64_t v = 0;
  EXPECT_TRUE(ParseInt64("-12345678901", &v));
  EXPECT_EQ(v, -12345678901LL);
  EXPECT_FALSE(ParseInt64("12.5", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  // Long output is not truncated.
  const std::string big = StrFormat("%0512d", 1);
  EXPECT_EQ(big.size(), 512u);
}

// ---------------------------------------------------------------- CSV

TEST(CsvTest, PlainRow) {
  CsvWriter w;
  CsvReader r;
  const std::string line = w.FormatRow({"a", "b", "c"});
  EXPECT_EQ(line, "a,b,c");
  auto parsed = r.ParseRow(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, QuotedRoundTrip) {
  CsvWriter w;
  CsvReader r;
  const std::vector<std::string> fields = {"a,b", "say \"hi\"", "plain"};
  auto parsed = r.ParseRow(w.FormatRow(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), fields);
}

TEST(CsvTest, UnterminatedQuoteIsError) {
  CsvReader r;
  EXPECT_FALSE(r.ParseRow("\"abc").ok());
}

TEST(CsvTest, EmptyLineIsOneEmptyField) {
  CsvReader r;
  auto parsed = r.ParseRow("");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 1u);
}

// ---------------------------------------------------------------- Rng

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(3, 7));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 3);
  EXPECT_EQ(*seen.rbegin(), 7);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.Add(rng.Exponential(0.5));
  EXPECT_NEAR(stats.mean(), 2.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

// ---------------------------------------------------------------- Stats

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequential) {
  Rng rng(23);
  RunningStats all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Gaussian(0, 1);
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(5);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 5.0);
}

TEST(PercentileTrackerTest, KnownPercentiles) {
  PercentileTracker t;
  for (int i = 1; i <= 100; ++i) t.Add(i);
  EXPECT_NEAR(t.p50(), 50.5, 0.6);
  EXPECT_NEAR(t.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(t.Max(), 100.0, 1e-9);
  EXPECT_GT(t.p99(), 98.0);
}

TEST(PercentileTrackerTest, EmptyReturnsZero) {
  PercentileTracker t;
  EXPECT_DOUBLE_EQ(t.p50(), 0.0);
}

TEST(HistogramTest, BinningAndOverflow) {
  Histogram h(0, 10, 10);
  h.Add(-1);
  h.Add(0);
  h.Add(9.99);
  h.Add(10);
  h.Add(5.5);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.BinCount(0), 1u);
  EXPECT_EQ(h.BinCount(9), 1u);
  EXPECT_EQ(h.BinCount(5), 1u);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(LogHistogramTest, BucketBoundaries) {
  // Bucket 0 holds zeros (and negatives, clamped); bucket b>0 covers
  // [2^(b-1), 2^b).
  LogHistogram h;
  h.Add(0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  h.Add(-3);
  EXPECT_EQ(h.bucket_count(0), 2u);
  h.Add(1);  // [1, 2) -> bucket 1
  EXPECT_EQ(h.bucket_count(1), 1u);
  h.Add(2);  // [2, 4) -> bucket 2
  h.Add(3);
  EXPECT_EQ(h.bucket_count(2), 2u);
  h.Add(4);  // [4, 8) -> bucket 3
  EXPECT_EQ(h.bucket_count(3), 1u);
  h.Add(1023);  // [512, 1024) -> bucket 10
  h.Add(1024);  // [1024, 2048) -> bucket 11
  EXPECT_EQ(h.bucket_count(10), 1u);
  EXPECT_EQ(h.bucket_count(11), 1u);
  EXPECT_EQ(h.count(), 8u);
}

TEST(LogHistogramTest, HugeValuesLandInLastBucket) {
  LogHistogram h;
  h.Add(1.5e19);  // beyond 2^63 — must cap at the last bucket
  h.Add(9.9e18);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.bucket_count(LogHistogram::num_buckets() - 1), 2u);
  // Percentile stays finite and answers from the top bucket.
  EXPECT_GT(h.p99(), 0.0);
}

TEST(LogHistogramTest, AddBucketCountRoundTrip) {
  LogHistogram h;
  for (double x : {0.0, 1.0, 7.0, 100.0, 5000.0, 1e12}) h.Add(x);
  LogHistogram rebuilt;
  for (std::size_t b = 0; b < LogHistogram::num_buckets(); ++b) {
    rebuilt.AddBucketCount(b, h.bucket_count(b));
  }
  EXPECT_EQ(rebuilt, h);
  // A rebuilt copy merges exactly like the original.
  LogHistogram via_orig = h, via_rebuilt = rebuilt;
  LogHistogram extra;
  extra.Add(42);
  via_orig.Merge(extra);
  via_rebuilt.Merge(extra);
  EXPECT_EQ(via_orig, via_rebuilt);
}

TEST(RunningStatsTest, FromRawRoundTrip) {
  RunningStats s;
  for (double x : {1.5, -2.0, 7.25, 0.0, 100.0}) s.Add(x);
  RunningStats decoded = RunningStats::FromRaw(s.count(), s.mean(), s.m2(),
                                               s.min(), s.max());
  EXPECT_EQ(decoded, s);

  // Merging through the decoded copy matches merging the original.
  RunningStats other;
  other.Add(3.0);
  other.Add(-9.5);
  RunningStats via_orig = s, via_decoded = decoded;
  via_orig.Merge(other);
  via_decoded.Merge(other);
  EXPECT_EQ(via_orig, via_decoded);

  RunningStats empty = RunningStats::FromRaw(0, 0, 0, 0, 0);
  EXPECT_EQ(empty, RunningStats{});
}

// ---------------------------------------------------------------- Logging

TEST(LoggingTest, CaptureSinkReceivesTaggedRecords) {
  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kDebug);
  CaptureLogSink capture;
  LogSink* previous = SetLogSink(&capture);

  Log(LogLevel::kInfo, "untagged message");
  Log(LogLevel::kWarning, "engine", "tagged message");
  Logf(LogLevel::kInfo, "formatted %d", 42);
  Logfc(LogLevel::kError, "net", "frame %s", "bad");

  SetLogSink(previous);
  SetLogLevel(saved_level);

  const auto entries = capture.Entries();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].component, "");
  EXPECT_EQ(entries[0].message, "untagged message");
  EXPECT_EQ(entries[1].level, LogLevel::kWarning);
  EXPECT_EQ(entries[1].component, "engine");
  EXPECT_EQ(entries[2].message, "formatted 42");
  EXPECT_EQ(entries[3].component, "net");
  EXPECT_EQ(entries[3].message, "frame bad");
}

TEST(LoggingTest, SinkHonorsLevelFilter) {
  const LogLevel saved_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  CaptureLogSink capture;
  LogSink* previous = SetLogSink(&capture);

  Log(LogLevel::kInfo, "engine", "below the filter");
  Log(LogLevel::kError, "engine", "passes");

  SetLogSink(previous);
  SetLogLevel(saved_level);

  const auto entries = capture.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].message, "passes");
}

// ---------------------------------------------------------------- Time

TEST(TimeTest, FormatKnownTimestamp) {
  // 2017-03-21T00:00:00Z = 1490054400000 ms.
  EXPECT_EQ(FormatIso8601(1490054400000), "2017-03-21T00:00:00.000Z");
}

TEST(TimeTest, ParseFormatRoundTrip) {
  const TimestampMs cases[] = {0, 1490054400123, 1700000000999};
  for (TimestampMs ts : cases) {
    TimestampMs parsed = 0;
    ASSERT_TRUE(ParseIso8601(FormatIso8601(ts), &parsed));
    EXPECT_EQ(parsed, ts);
  }
}

TEST(TimeTest, ParseWithoutMillisOrZone) {
  TimestampMs parsed = 0;
  ASSERT_TRUE(ParseIso8601("2017-03-21T12:30:15", &parsed));
  EXPECT_EQ(parsed, 1490099415000);
}

TEST(TimeTest, ParseRejectsGarbage) {
  TimestampMs parsed = 0;
  EXPECT_FALSE(ParseIso8601("not a date", &parsed));
  EXPECT_FALSE(ParseIso8601("2017-13-01T00:00:00Z", &parsed));
  EXPECT_FALSE(ParseIso8601("2017-03-21T00:00:00Zjunk", &parsed));
}

TEST(TimeTest, MonotonicAdvances) {
  const std::int64_t a = MonotonicNanos();
  const std::int64_t b = MonotonicNanos();
  EXPECT_GE(b, a);
}

// ---------------------------------------------------------------- Pool

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.Submit([] { return 40 + 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZero) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, QueueWaitHistogramCountsTasks) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([] {}));
  }
  for (auto& f : futures) f.get();
  pool.ParallelFor(100, [](std::size_t) {});
  const LogHistogram wait = pool.QueueWaitNanos();
  // Every executed task contributes one queue-wait sample (ParallelFor
  // chunks count per chunk, so >= the 50 submits).
  EXPECT_GE(wait.count(), 50u);
  EXPECT_GE(wait.p50(), 0.0);
}

TEST(ThreadPoolTest, ManyTasks) {
  ThreadPool pool(3);
  std::atomic<int> sum{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.Submit([&sum] { sum += 1; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(sum.load(), 200);
}

// A pool task that itself calls ParallelFor must not deadlock: the worker
// help-runs the queued chunks instead of blocking behind them. The
// single-worker pool is the hardest case — every chunk queues behind the
// caller.
TEST(ThreadPoolTest, NestedParallelForOnWorkerDoesNotDeadlock) {
  ThreadPool pool(1);
  std::atomic<int> hits{0};
  auto f = pool.Submit([&] {
    pool.ParallelFor(64, [&](std::size_t) { hits.fetch_add(1); });
  });
  f.get();
  EXPECT_EQ(hits.load(), 64);
}

TEST(ThreadPoolTest, DeeplyNestedParallelFor) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.ParallelFor(4, [&](std::size_t) {
    pool.ParallelFor(4, [&](std::size_t) {
      pool.ParallelFor(8, [&](std::size_t) { hits.fetch_add(1); });
    });
  });
  EXPECT_EQ(hits.load(), 4 * 4 * 8);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](std::size_t i) {
                         ran.fetch_add(1);
                         if (i == 13) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The call returned only after every chunk finished (otherwise later
  // chunks would have referenced a dead stack frame); the pool stays
  // usable.
  std::atomic<int> after{0};
  pool.ParallelFor(50, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 50);
  EXPECT_GE(ran.load(), 1);
}

TEST(ThreadPoolTest, ParallelForAllIterationsThrow) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(
                   40, [&](std::size_t) { throw std::runtime_error("each"); }),
               std::runtime_error);
  std::atomic<int> after{0};
  pool.ParallelFor(10, [&](std::size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 10);
}

TEST(ThreadPoolTest, ConcurrentParallelForsFromManyThreads) {
  ThreadPool pool(4);
  std::atomic<int> hits{0};
  std::vector<std::thread> callers;
  for (int t = 0; t < 6; ++t) {
    callers.emplace_back([&] {
      for (int rep = 0; rep < 20; ++rep) {
        pool.ParallelFor(32, [&](std::size_t) { hits.fetch_add(1); });
      }
    });
  }
  for (auto& c : callers) c.join();
  EXPECT_EQ(hits.load(), 6 * 20 * 32);
}

TEST(ThreadPoolTest, NestedParallelForWithExceptionInInner) {
  ThreadPool pool(2);
  std::atomic<int> outer_done{0};
  pool.ParallelFor(4, [&](std::size_t) {
    try {
      pool.ParallelFor(8, [&](std::size_t j) {
        if (j == 5) throw std::runtime_error("inner");
      });
    } catch (const std::runtime_error&) {
    }
    outer_done.fetch_add(1);
  });
  EXPECT_EQ(outer_done.load(), 4);
}

}  // namespace
}  // namespace datacron
