#include <gtest/gtest.h>

#include "cep/anomaly.h"
#include "common/rng.h"
#include "stream/pipeline.h"

namespace datacron {
namespace {

PositionReport Moving(EntityId id, TimestampMs t, double lat, double lon,
                      double speed) {
  PositionReport r;
  r.entity_id = id;
  r.timestamp = t;
  r.position = {lat, lon, 0};
  r.speed_mps = speed;
  return r;
}

TEST(GapDetectorTest, FiresOnReappearanceWithAttributes) {
  GapDetector det;
  std::vector<Event> out;
  det.ProcessCounted(Moving(1, 0, 36.0, 24.0, 5), &out);
  det.ProcessCounted(Moving(1, 5 * kMinute, 36.01, 24.0, 5), &out);
  EXPECT_TRUE(out.empty());  // below threshold
  det.ProcessCounted(Moving(1, 30 * kMinute, 36.2, 24.0, 5), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, EventKind::kGap);
  EXPECT_NEAR(out[0].attributes.at("silence_s"), 25 * 60, 1);
  EXPECT_GT(out[0].attributes.at("dark_distance_m"), 15000);
}

TEST(GapDetectorTest, PerEntityState) {
  GapDetector det;
  std::vector<Event> out;
  det.ProcessCounted(Moving(1, 0, 36.0, 24.0, 5), &out);
  // Entity 2's first report long after entity 1's: no gap (no history).
  det.ProcessCounted(Moving(2, 40 * kMinute, 37.0, 25.0, 5), &out);
  EXPECT_TRUE(out.empty());
}

TEST(GapDetectorTest, ConfigurableThreshold) {
  GapDetector::Config cfg;
  cfg.gap_threshold = 2 * kMinute;
  GapDetector det(cfg);
  std::vector<Event> out;
  det.ProcessCounted(Moving(1, 0, 36.0, 24.0, 5), &out);
  det.ProcessCounted(Moving(1, 3 * kMinute, 36.01, 24.0, 5), &out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(SpeedAnomalyTest, FlagsSpikeAfterWarmup) {
  SpeedAnomalyDetector det;
  std::vector<Event> out;
  Rng rng(5);
  TimestampMs t = 0;
  for (int i = 0; i < 60; ++i) {
    det.ProcessCounted(
        Moving(1, t, 36.0, 24.0, 8.0 + rng.Gaussian(0, 0.3)), &out);
    t += 10 * kSecond;
  }
  EXPECT_TRUE(out.empty());
  det.ProcessCounted(Moving(1, t, 36.0, 24.0, 25.0), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, EventKind::kSpeedAnomaly);
  EXPECT_GT(out[0].attributes.at("zscore"), 4.0);
  EXPECT_NEAR(out[0].attributes.at("profile_mean_mps"), 8.0, 0.5);
}

TEST(SpeedAnomalyTest, NoAlarmDuringWarmup) {
  SpeedAnomalyDetector det;
  std::vector<Event> out;
  // Wild speeds but fewer than warmup_reports samples.
  for (int i = 0; i < 10; ++i) {
    det.ProcessCounted(
        Moving(1, i * 1000, 36, 24, i % 2 == 0 ? 1.0 : 30.0), &out);
  }
  EXPECT_TRUE(out.empty());
}

TEST(SpeedAnomalyTest, SelfBaselining) {
  // A fast ferry's 25 m/s is normal for it; a trawler's is not.
  SpeedAnomalyDetector det;
  std::vector<Event> out;
  Rng rng(6);
  for (int i = 0; i < 60; ++i) {
    det.ProcessCounted(
        Moving(1, i * 10000, 36, 24, 25.0 + rng.Gaussian(0, 0.3)), &out);
    det.ProcessCounted(
        Moving(2, i * 10000, 37, 25, 3.0 + rng.Gaussian(0, 0.3)), &out);
  }
  EXPECT_TRUE(out.empty());
  det.ProcessCounted(Moving(1, 700000, 36, 24, 25.5), &out);  // ferry: fine
  EXPECT_TRUE(out.empty());
  det.ProcessCounted(Moving(2, 700000, 37, 25, 25.5), &out);  // trawler: !
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].entities[0], 2u);
}

TEST(SpeedAnomalyTest, AnomalousSampleDoesNotPoisonProfile) {
  SpeedAnomalyDetector::Config cfg;
  cfg.realarm_interval = 0;
  SpeedAnomalyDetector det(cfg);
  std::vector<Event> out;
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    det.ProcessCounted(
        Moving(1, i * 10000, 36, 24, 8.0 + rng.Gaussian(0, 0.3)), &out);
  }
  // Two consecutive spikes: both must alarm (profile unchanged by first).
  det.ProcessCounted(Moving(1, 700000, 36, 24, 25.0), &out);
  det.ProcessCounted(Moving(1, 710000, 36, 24, 25.0), &out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(SpeedAnomalyTest, RealarmSuppression) {
  SpeedAnomalyDetector det;  // default 10-min realarm
  std::vector<Event> out;
  Rng rng(8);
  for (int i = 0; i < 60; ++i) {
    det.ProcessCounted(
        Moving(1, i * 10000, 36, 24, 8.0 + rng.Gaussian(0, 0.3)), &out);
  }
  det.ProcessCounted(Moving(1, 700000, 36, 24, 25.0), &out);
  det.ProcessCounted(Moving(1, 710000, 36, 24, 25.0), &out);  // suppressed
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace datacron
