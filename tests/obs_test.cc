#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "stream/operator.h"

namespace datacron {
namespace {

/// Minimal structural JSON validator: checks quote/brace/bracket balance
/// outside strings. Good enough to catch unescaped quotes, truncation,
/// and trailing commas from the emitters under test.
bool JsonBalanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : s) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control char inside a string
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default:
        break;
    }
  }
  return depth == 0 && !in_string;
}

class TracingGuard {
 public:
  TracingGuard() {
    obs::TraceCollector::Discard();
    obs::EnableTracing(true);
  }
  ~TracingGuard() {
    obs::EnableTracing(false);
    obs::TraceCollector::Discard();
  }
};

TEST(TraceTest, DisabledSpanRecordsNothing) {
  obs::EnableTracing(false);
  obs::TraceCollector::Discard();
  {
    DATACRON_TRACE_SPAN("noop", "test");
  }
  EXPECT_TRUE(obs::TraceCollector::Drain().empty());
}

TEST(TraceTest, SpanCapturesContextAndDuration) {
  TracingGuard guard;
  {
    obs::ScopedTraceContext ctx(/*epoch=*/7, /*shard=*/3);
    DATACRON_TRACE_SPAN("ctx_span", "test");
  }
  std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "ctx_span");
  EXPECT_STREQ(spans[0].category, "test");
  EXPECT_EQ(spans[0].epoch, 7);
  EXPECT_EQ(spans[0].shard, 3);
  EXPECT_GE(spans[0].dur_ns, 0);
}

TEST(TraceTest, NestedContextRestoresOuter) {
  TracingGuard guard;
  {
    obs::ScopedTraceContext outer(1, 0);
    {
      obs::ScopedTraceContext inner(2, 5);
      DATACRON_TRACE_SPAN("inner", "test");
    }
    DATACRON_TRACE_SPAN("outer", "test");
  }
  std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
  ASSERT_EQ(spans.size(), 2u);
  // Drain orders by start_ns; inner opened first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].epoch, 2);
  EXPECT_EQ(spans[0].shard, 5);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].epoch, 1);
  EXPECT_EQ(spans[1].shard, 0);
}

TEST(TraceTest, ExplicitEndCommitsOnce) {
  TracingGuard guard;
  {
    obs::TraceSpan span("early", "test");
    span.End();
    span.End();  // second End and the destructor must not double-commit
  }
  EXPECT_EQ(obs::TraceCollector::Drain().size(), 1u);
}

TEST(TraceTest, ConcurrentThreadsAllSpansCollected) {
  TracingGuard guard;
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      obs::ScopedTraceContext ctx(/*epoch=*/t, /*shard=*/t);
      for (int i = 0; i < kSpansPerThread; ++i) {
        DATACRON_TRACE_SPAN("worker", "test");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
  EXPECT_EQ(spans.size(),
            static_cast<std::size_t>(kThreads) * kSpansPerThread);
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_ns, spans[i].start_ns);
  }
  // Each thread's spans carry that thread's context.
  std::map<std::uint32_t, std::int64_t> epoch_by_tid;
  for (const obs::TraceSpanRecord& s : spans) {
    auto [it, inserted] = epoch_by_tid.emplace(s.tid, s.epoch);
    EXPECT_EQ(it->second, s.epoch);
  }
  EXPECT_EQ(epoch_by_tid.size(), static_cast<std::size_t>(kThreads));
}

TEST(TraceTest, ChromeJsonWellFormed) {
  TracingGuard guard;
  {
    obs::ScopedTraceContext ctx(42, 1);
    DATACRON_TRACE_SPAN("json \"quoted\" name\\path", "cat");
  }
  std::vector<obs::TraceSpanRecord> spans = obs::TraceCollector::Drain();
  ASSERT_EQ(spans.size(), 1u);
  const std::string json = obs::ChromeTraceJson(spans);
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"epoch\":42"), std::string::npos);
  EXPECT_NE(json.find("\"shard\":1"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  // The raw quote and backslash must have been escaped.
  EXPECT_NE(json.find("json \\\"quoted\\\" name\\\\path"),
            std::string::npos);
}

TEST(TraceTest, WriteChromeTraceFile) {
  TracingGuard guard;
  { DATACRON_TRACE_SPAN("file_span", "test"); }
  const std::string path = ::testing::TempDir() + "obs_trace_test.json";
  ASSERT_TRUE(obs::WriteChromeTraceFile(path));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_TRUE(JsonBalanced(buf.str()));
  EXPECT_NE(buf.str().find("file_span"), std::string::npos);
  std::remove(path.c_str());
}

TEST(MetricsTest, CounterConcurrentAdds) {
  obs::Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kAdds; ++i) c.Add();
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(MetricsTest, AtomicHistogramMatchesLogHistogram) {
  obs::AtomicLogHistogram atomic;
  LogHistogram plain;
  const double samples[] = {0, 1, 2, 3, 4, 100, 1024, 1e15, -5};
  for (double x : samples) {
    atomic.Observe(x);
    plain.Add(x);
  }
  EXPECT_EQ(atomic.Snapshot(), plain);
  EXPECT_EQ(atomic.Count(), plain.count());
}

TEST(MetricsTest, RegistryPointersStable) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  obs::Counter* a = reg.counter("obs_test.stable");
  obs::Counter* b = reg.counter("obs_test.stable");
  EXPECT_EQ(a, b);
  a->Add(3);
  obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_GE(snap.counters["obs_test.stable"], 3u);
}

TEST(MetricsTest, SnapshotMergeDeterministic) {
  obs::MetricsSnapshot a;
  a.AddCounter("x", 2);
  a.AddCounter("only_a", 1);
  LogHistogram ha;
  ha.Add(10);
  a.AddHistogram("h", ha);

  obs::MetricsSnapshot b;
  b.AddCounter("x", 5);
  LogHistogram hb;
  hb.Add(1000);
  b.AddHistogram("h", hb);
  b.AddGauge("g", 7);

  obs::MetricsSnapshot ab = a;
  ab.Merge(b);
  obs::MetricsSnapshot ba = b;
  ba.Merge(a);

  EXPECT_EQ(ab.counters["x"], 7u);
  EXPECT_EQ(ab.counters["only_a"], 1u);
  EXPECT_EQ(ab.histograms["h"].count(), 2u);
  // Counters and histograms commute; merge order never changes them.
  EXPECT_EQ(ab.counters, ba.counters);
  EXPECT_EQ(ab.histograms, ba.histograms);
  EXPECT_EQ(ab.ToText(), ba.ToText());
}

TEST(MetricsTest, SnapshotTextAndJsonStable) {
  obs::MetricsSnapshot snap;
  snap.AddCounter("b.second", 2);
  snap.AddCounter("a.first", 1);
  snap.AddGauge("g", -4);
  LogHistogram h;
  h.Add(5);
  snap.AddHistogram("lat", h);

  const std::string text = snap.ToText();
  // Sorted by name: a.first before b.second.
  EXPECT_LT(text.find("a.first"), text.find("b.second"));

  const std::string json = snap.ToJson();
  EXPECT_TRUE(JsonBalanced(json)) << json;
  EXPECT_NE(json.find("\"a.first\":1"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-4"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);

  // Histogram JSON round-trips through AddBucketCount semantics: the
  // emitted [bucket, count] pairs rebuild an equal histogram.
  LogHistogram rebuilt;
  for (std::size_t b = 0; b < LogHistogram::num_buckets(); ++b) {
    rebuilt.AddBucketCount(b, h.bucket_count(b));
  }
  EXPECT_EQ(rebuilt, h);
}

TEST(MetricsTest, OperatorMetricsBridge) {
  OperatorMetrics m;
  m.name = "cp_detect";
  m.items_in = 10;
  m.items_out = 4;
  m.latency_ns.Add(100);
  m.latency_ns.Add(200);

  obs::MetricsSnapshot snap;
  obs::AddOperatorMetrics("engine.keyed.cp_detect", m, &snap);
  EXPECT_EQ(snap.counters["engine.keyed.cp_detect.items_in"], 10u);
  EXPECT_EQ(snap.counters["engine.keyed.cp_detect.items_out"], 4u);
  EXPECT_EQ(snap.histograms["engine.keyed.cp_detect.process_ns"].count(),
            2u);
}

}  // namespace
}  // namespace datacron
