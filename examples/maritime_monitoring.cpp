// Maritime Situational Awareness scenario (the paper's maritime use
// case): congested coastal waters with a port, an anchorage and a
// protected zone.
//
//   - recognizes encounters, potential collisions (CPA), loitering,
//     area entries/exits
//   - runs the composite rule "entered protected zone, then loitered
//     before leaving" through the pattern engine
//   - detects traffic hotspots and forecasts emerging ones
//   - links vessels to the weather they experienced
//   - renders a density map of the traffic and writes GeoJSON overlays
//
// Build & run:  ./build/examples/maritime_monitoring
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "cep/detectors.h"
#include "cep/hotspot.h"
#include "cep/pattern.h"
#include "link/link_discovery.h"
#include "sources/ais_generator.h"
#include "sources/weather.h"
#include "stream/pipeline.h"
#include "synopses/critical_points.h"
#include "trajectory/episodes.h"
#include "trajectory/reconstruct.h"
#include "viz/geojson.h"
#include "viz/raster.h"
#include "viz/svg.h"

using namespace datacron;

int main() {
  // Congested strait, shared shipping lanes.
  const BoundingBox region = BoundingBox::Of(36.0, 24.0, 36.8, 24.8);
  AisGeneratorConfig fleet;
  fleet.region = region;
  fleet.num_vessels = 50;
  fleet.num_routes = 6;
  fleet.duration = kHour;
  const auto traces = GenerateAisFleet(fleet);
  ObservationConfig obs;
  obs.gap_probability = 0.0005;
  auto stream = ObserveFleet(traces, obs);

  // Inject one scripted suspicious vessel: sails into the protected zone
  // and circles there — the behaviour the composite rule below hunts.
  {
    const EntityId kSuspect = 999000001;
    const LatLon zone_center{36.45, 24.6};
    GeoPoint pos{36.40, 24.6, 0};  // ~6 km south of the zone center
    TimestampMs t = fleet.start_time;
    for (int i = 0; i < 200; ++i) {
      PositionReport r;
      r.entity_id = kSuspect;
      r.timestamp = t;
      r.position = pos;
      if (EquirectangularMeters(pos.ll(), zone_center) > 600) {
        // Approach the zone center.
        r.course_deg = InitialBearingDeg(pos.ll(), zone_center);
        r.speed_mps = 6.0;
      } else {
        // Tight circling: low net displacement while under way.
        r.course_deg = (i * 35) % 360;
        r.speed_mps = 2.5;
      }
      stream.push_back(r);
      pos = DeadReckon(pos, r.course_deg, r.speed_mps, 0, 15.0);
      t += 15 * kSecond;
    }
    std::sort(stream.begin(), stream.end(), ReportTimeOrder());
  }
  std::printf("maritime scenario: %zu vessels (+1 scripted suspect), %zu "
              "reports, 1 h\n\n",
              fleet.num_vessels, stream.size());

  // Areas of interest.
  std::vector<NamedArea> areas = {
      {"port_piraeus_like", Polygon::Circle({36.15, 24.15}, 8000, 24)},
      {"anchorage", Polygon::Circle({36.6, 24.3}, 6000, 24)},
      {"protected_zone", Polygon::Rectangle(
                             BoundingBox::Of(36.35, 24.5, 36.55, 24.7))},
  };

  // --- complex event recognition -------------------------------------
  ProximityDetector::Config pcfg;
  pcfg.region = region;
  pcfg.blocking_cell_deg = 0.05;
  ProximityDetector proximity(pcfg);
  AreaEventDetector area_events(areas);
  LoiteringDetector::Config lcfg;
  lcfg.window = 15 * kMinute;
  lcfg.radius_m = 900;
  LoiteringDetector loitering(lcfg);

  std::vector<Event> events;
  for (const PositionReport& r : stream) {
    proximity.ProcessCounted(r, &events);
    area_events.ProcessCounted(r, &events);
    loitering.ProcessCounted(r, &events);
  }

  std::map<EventKind, int> by_kind;
  for (const Event& e : events) by_kind[e.kind]++;
  std::printf("recognized events:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-20s %5d\n", EventKindName(kind), count);
  }

  // Composite rule: suspicious activity inside the protected zone.
  Pattern rule;
  rule.name = "loiter_in_protected_zone";
  rule.steps = {
      PatternStep{"enter_zone",
                  [](const Event& e) {
                    return e.kind == EventKind::kAreaEntry &&
                           e.label == "protected_zone";
                  },
                  false},
      PatternStep{"no_exit",
                  [](const Event& e) {
                    return e.kind == EventKind::kAreaExit &&
                           e.label == "protected_zone";
                  },
                  true},  // negated
      Pattern::OnKind(EventKind::kLoitering),
  };
  rule.within = kHour;
  PatternMatcher matcher(rule);
  const auto composites = pipeline::RunBatch(&matcher, events);
  std::printf("  %-20s %5zu\n\n", "composite rule hits", composites.size());
  for (const Event& e : composites) {
    std::printf("  ALERT %s\n", e.ToString().c_str());
  }

  // --- semantic trajectories --------------------------------------------
  // Synopsis -> episodes: each vessel's day as stop/move/gap segments.
  CriticalPointDetector cp_detector;
  const auto synopsis = pipeline::RunBatch(&cp_detector, stream);
  EpisodeBuilder episode_builder(areas);
  const auto episodes = episode_builder.Build(synopsis);
  std::size_t stops = 0, moves = 0, gaps = 0;
  for (const Episode& e : episodes) {
    if (e.kind == EpisodeKind::kStop) ++stops;
    if (e.kind == EpisodeKind::kMove) ++moves;
    if (e.kind == EpisodeKind::kGap) ++gaps;
  }
  std::printf("\nsemantic trajectories: %zu episodes (%zu stops, %zu "
              "moves, %zu gaps); samples:\n",
              episodes.size(), stops, moves, gaps);
  int shown = 0;
  for (const Episode& e : episodes) {
    if (e.kind == EpisodeKind::kStop && !e.area.empty()) {
      std::printf("  %s\n", ToString(e).c_str());
      if (++shown >= 3) break;
    }
  }

  // --- hotspots --------------------------------------------------------
  HotspotAnalyzer::Config hcfg;
  hcfg.region = region;
  hcfg.cell_deg = 0.04;
  hcfg.zscore_threshold = 2.5;
  HotspotAnalyzer hotspots(hcfg);
  const auto hot = hotspots.Detect(stream);
  std::printf("\ntraffic hotspots (z >= 2.5): %zu\n", hot.size());
  for (std::size_t i = 0; i < hot.size() && i < 5; ++i) {
    std::printf("  cell (%d,%d) @ %.3f,%.3f  density=%.0f z=%.1f\n",
                hot[i].cell.ix, hot[i].cell.iy, hot[i].center.lat_deg,
                hot[i].center.lon_deg, hot[i].count, hot[i].zscore);
  }

  // --- weather enrichment ---------------------------------------------
  WeatherSource::Config wcfg;
  wcfg.region = region;
  WeatherSource weather(wcfg);
  LinkDiscovery::Config linkcfg;
  linkcfg.region = region;
  LinkDiscovery linker(linkcfg);
  const auto wx_links = linker.DiscoverWeatherLinks(stream, weather);
  double rough_weather = 0;
  for (const auto& l : wx_links) {
    const WeatherSample s =
        weather.At(weather.grid().CellCenter(l.cell), l.bucket_start);
    if (s.wave_height_m > 2.0) ++rough_weather;
  }
  std::printf("\nweather links: %zu reports linked; %.1f%% sailed in "
              ">2 m waves\n",
              wx_links.size(), 100.0 * rough_weather / wx_links.size());

  // --- visual analytics backend ----------------------------------------
  DensityRaster raster(region, 72, 28);
  raster.AddReports(stream);
  std::printf("\ntraffic density (N at top):\n%s\n",
              raster.ToAscii().c_str());

  // Reconstructed trajectories + events as GeoJSON for a map client.
  std::vector<Trajectory> trips;
  std::map<EntityId, std::vector<PositionReport>> per_entity;
  for (const auto& r : stream) per_entity[r.entity_id].push_back(r);
  for (const auto& [id, pts] : per_entity) {
    for (auto& t : Reconstruct(pts, ReconstructionConfig{})) {
      trips.push_back(std::move(t));
    }
  }
  std::ofstream("maritime_trajectories.geojson")
      << TrajectoriesToGeoJson(trips);
  std::ofstream("maritime_events.geojson") << EventsToGeoJson(events);
  std::ofstream("maritime_areas.geojson") << AreasToGeoJson(areas);

  // Standalone SVG situation picture.
  SvgMap svg(region, 1000, 1000);
  for (const NamedArea& a : areas) svg.AddArea(a);
  svg.AddTrajectories(trips);
  svg.AddEvents(events);
  std::ofstream("maritime_map.svg") << svg.Render();

  std::printf("wrote maritime_{trajectories,events,areas}.geojson and "
              "maritime_map.svg (%zu trips, %zu events)\n",
              trips.size(), events.size());
  return 0;
}
