// Heterogeneous data integration demo: streams + areas + archival
// weather, interlinked and queried through one RDF store — the paper's
// "integrated exploitation of data-at-rest and data-in-motion".
//
//   1. vessels (data-in-motion) are RDF-ized
//   2. archival weather (data-at-rest) is RDF-ized
//   3. link discovery materializes vessel<->vessel, vessel->area and
//      vessel->weather associations as triples
//   4. a spatiotemporal query joins across all of it: "vessels that had
//      an encounter inside the strait — and what weather they were in"
//
// Build & run:  ./build/examples/link_discovery_demo
#include <cstdio>

#include "link/link_discovery.h"
#include "link/rdf_links.h"
#include "partition/partitioned_store.h"
#include "partition/partitioner.h"
#include "query/engine.h"
#include "rdf/rdfizer.h"
#include "sources/ais_generator.h"
#include "sources/weather.h"

using namespace datacron;

int main() {
  const BoundingBox region = BoundingBox::Of(36.0, 24.0, 36.8, 24.8);

  // 1. Data-in-motion.
  AisGeneratorConfig fleet;
  fleet.region = region;
  fleet.num_vessels = 40;
  fleet.num_routes = 5;
  fleet.duration = kHour;
  const auto traces = GenerateAisFleet(fleet);
  const auto stream = ObserveFleet(traces, ObservationConfig{});

  TermDictionary dict;
  Vocab vocab(&dict);
  Rdfizer::Config rcfg;
  rcfg.region = region;
  Rdfizer rdfizer(rcfg, &dict, &vocab);
  std::vector<Triple> triples;
  for (const PositionReport& r : stream) {
    const auto ts = rdfizer.TransformReport(r);
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  std::printf("streams:  %zu reports -> %zu triples\n", stream.size(),
              triples.size());

  // 2. Data-at-rest.
  WeatherSource::Config wcfg;
  wcfg.region = region;
  wcfg.duration = 2 * kHour;
  WeatherSource weather(wcfg);
  std::size_t weather_triples = 0;
  for (const WeatherSample& s : weather.MaterializeAll()) {
    const auto ts = rdfizer.TransformWeather(s);
    weather_triples += ts.size();
    triples.insert(triples.end(), ts.begin(), ts.end());
  }
  std::printf("archival: weather grid -> %zu triples\n", weather_triples);

  // 3. Link discovery.
  LinkDiscovery::Config lcfg;
  lcfg.region = region;
  lcfg.proximity_threshold_m = 2000;
  LinkDiscovery linker(lcfg);
  const auto encounters = linker.DiscoverProximity(stream);
  const auto wx_links = linker.DiscoverWeatherLinks(stream, weather);
  std::vector<NamedArea> areas = {
      {"strait", Polygon::Rectangle(BoundingBox::Of(36.3, 24.3, 36.5, 24.5))}};
  const auto area_links = linker.DiscoverAreaLinks(stream, areas);

  std::vector<Triple> link_triples;
  const auto s1 = MaterializeProximityLinks(encounters, &rdfizer, vocab,
                                            &link_triples);
  const auto s2 =
      MaterializeAreaLinks(area_links, &rdfizer, vocab, &link_triples);
  const auto s3 =
      MaterializeWeatherLinks(wx_links, &rdfizer, vocab, &link_triples);
  triples.insert(triples.end(), link_triples.begin(), link_triples.end());
  std::printf(
      "links:    %zu encounter, %zu area, %zu weather -> %zu triples "
      "(%zu skipped)\n",
      encounters.size(), area_links.size(), wx_links.size(),
      link_triples.size(),
      s1.skipped_unknown_node + s2.skipped_unknown_node +
          s3.skipped_unknown_node);

  // 4. Query across everything: encounters + the weather at that moment.
  auto scheme = HilbertPartitioner::Build(4, &rdfizer.tags(),
                                          rdfizer.grid());
  PartitionedRdfStore store;
  store.Load(triples, *scheme, rdfizer.grid(), vocab.p_next_node);
  QueryEngine qe(&store, &rdfizer);

  QueryBuilder qb;
  qb.WhereVar("node", vocab.p_near_entity, "other");   // had an encounter
  qb.WhereVar("node", vocab.p_weather_at, "wx");       // weather link
  qb.WhereVar("wx", vocab.p_wave_height, "waves");     // archival value
  qb.Within("node", areas[0].polygon.bbox());          // inside the strait
  const ResultSet rs = qe.ExecuteGlobal(qb.Build());
  std::printf(
      "\nquery 'encounters in the strait, with sea state': %zu rows "
      "(%s)\n",
      rs.rows.size(), rs.stats.ToString().c_str());
  for (std::size_t i = 0; i < rs.rows.size() && i < 5; ++i) {
    // Columns: node, other, wx, waves.
    const auto node = dict.Text(rs.rows[i][0]).value_or("?");
    const auto other = dict.Text(rs.rows[i][1]).value_or("?");
    const auto waves = dict.Text(rs.rows[i][3]).value_or("?");
    std::printf("  %s near %s, waves %s m\n", node.c_str(), other.c_str(),
                waves.c_str());
  }
  return 0;
}
