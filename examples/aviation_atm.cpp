// Aviation / ATM scenario (the paper's aviation use case): en-route
// traffic over a continental region with ATM sectors.
//
//   - 3D conflict detection via CPA (horizontal + vertical separation)
//   - sector occupancy monitoring with capacity-demand *forecasting* —
//     the "accurate prediction of complex events or hotspots ... benefits
//     to the overall efficiency of an ATM system" of Section 3
//   - trajectory prediction through climb/cruise/descent
//
// Build & run:  ./build/examples/aviation_atm
#include <cstdio>
#include <map>

#include "cep/detectors.h"
#include "common/strings.h"
#include "forecast/eval.h"
#include "forecast/kalman.h"
#include "forecast/kinematic.h"
#include "sources/adsb_generator.h"
#include "stream/pipeline.h"
#include "sources/ais_generator.h"

using namespace datacron;

int main() {
  AdsbGeneratorConfig traffic;
  traffic.num_flights = 60;
  traffic.num_airports = 10;
  traffic.duration = 2 * kHour;
  const auto traces = GenerateAdsbTraffic(traffic);

  ObservationConfig obs;
  obs.fixed_interval_ms = 4 * kSecond;  // ADS-B cadence
  obs.position_noise_m = 25;
  obs.gap_probability = 0;
  const auto stream = ObserveFleet(traces, obs);
  std::printf("ATM scenario: %zu flights, %zu ADS-B reports, 2 h\n\n",
              traffic.num_flights, stream.size());

  // --- 3D conflict detection -------------------------------------------
  ProximityDetector::Config ccfg;
  ccfg.region = traffic.region;
  ccfg.encounter_m = 9260;          // 5 NM horizontal separation
  ccfg.danger_cpa_m = 9260;
  ccfg.danger_alt_m = 300;          // ~1000 ft vertical separation
  ccfg.cpa_lookahead = 10 * kMinute;
  ccfg.blocking_cell_deg = 0.25;
  ccfg.staleness = 30 * kSecond;
  ProximityDetector conflicts(ccfg);

  // --- sector capacity --------------------------------------------------
  std::vector<CapacityMonitor::Sector> sectors;
  const double lat_step =
      (traffic.region.max_lat - traffic.region.min_lat) / 2;
  const double lon_step =
      (traffic.region.max_lon - traffic.region.min_lon) / 2;
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      sectors.push_back(CapacityMonitor::Sector{
          StrFormat("sector_%d%d", i, j),
          Polygon::Rectangle(BoundingBox::Of(
              traffic.region.min_lat + i * lat_step,
              traffic.region.min_lon + j * lon_step,
              traffic.region.min_lat + (i + 1) * lat_step,
              traffic.region.min_lon + (j + 1) * lon_step)),
          12});
    }
  }
  CapacityMonitor::Config mcfg;
  mcfg.forecast_horizon = 15 * kMinute;
  CapacityMonitor capacity(sectors, mcfg);

  std::vector<Event> events;
  for (const PositionReport& r : stream) {
    conflicts.ProcessCounted(r, &events);
    capacity.ProcessCounted(r, &events);
  }

  std::map<EventKind, int> by_kind;
  for (const Event& e : events) by_kind[e.kind]++;
  std::printf("ATM events:\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-20s %5d\n", EventKindName(kind), count);
  }
  std::printf("\nfirst conflicts/overloads:\n");
  int shown = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kCollisionForecast ||
        e.kind == EventKind::kCapacityForecast) {
      std::printf("  %s\n", e.ToString().c_str());
      if (++shown >= 5) break;
    }
  }

  // --- trajectory prediction through flight phases ----------------------
  std::printf("\n3D prediction error through climb/cruise/descent:\n\n");
  ForecastEvalConfig fcfg;
  fcfg.horizons = {kMinute, 5 * kMinute};
  fcfg.warmup = 2 * kMinute;
  fcfg.observation = obs;
  DeadReckoningPredictor dr;
  KalmanPredictor::Config kc;
  kc.process_accel = 0.5;
  kc.meas_pos_m = 25;
  kc.meas_vel_mps = 2.0;
  KalmanPredictor kalman(kc);
  std::printf("%s\n", EvaluatePredictor(&dr, traces, fcfg).ToTable().c_str());
  std::printf("%s\n",
              EvaluatePredictor(&kalman, traces, fcfg).ToTable().c_str());
  return 0;
}
