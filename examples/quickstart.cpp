// Quickstart: the whole datAcron architecture in ~60 lines.
//
//   1. simulate a small AIS fleet (data source)
//   2. stream it through the DatacronEngine
//      (synopses -> RDF transform -> trajectory mgmt -> CEP)
//   3. ask the spatiotemporal store a question
//   4. ask the live predictor where a vessel will be in 10 minutes
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "datacron/datacron.h"  // umbrella header: the whole public API

using namespace datacron;

int main() {
  // 1. A fleet of 20 vessels sailing the Aegean for 30 simulated minutes.
  AisGeneratorConfig fleet;
  fleet.num_vessels = 20;
  fleet.duration = 30 * kMinute;
  const auto traces = GenerateAisFleet(fleet);
  const auto stream = ObserveFleet(traces, ObservationConfig{});

  // 2. Stream everything through the engine.
  DatacronEngine engine{DatacronEngine::Config{}};
  std::size_t events = 0;
  for (const PositionReport& report : stream) {
    events += engine.Ingest(report).size();
  }
  engine.Finish();

  std::printf("ingested %zu reports from %zu vessels\n",
              engine.reports_ingested(),
              engine.trajectories().EntityCount());
  std::printf("synopses kept %zu critical points (%.0fx compression)\n",
              engine.critical_points(),
              static_cast<double>(engine.reports_ingested()) /
                  engine.critical_points());
  std::printf("transformed into %zu RDF triples, %zu complex events\n",
              engine.triples().size(), events);
  std::printf("per-tuple latency p99: %.4f ms\n",
              engine.latencies().total_ms.p99());

  // 3. Query the data, in the text dialect, over a 4-way
  //    Hilbert-partitioned parallel store.
  auto scheme = HilbertPartitioner::Build(4, &engine.rdfizer()->tags(),
                                          engine.rdfizer()->grid());
  PartitionedRdfStore store;
  store.Load(engine.triples(), *scheme, engine.rdfizer()->grid());
  QueryEngine qe(&store, engine.rdfizer());
  const auto parsed = ParseQuery(
      "SELECT ?v WHERE { ?v <rdf:type> <dc:Vessel> . }",
      engine.dictionary());
  const ResultSet rs = qe.ExecuteGlobal(parsed.value().query);
  std::printf("query found %zu vessels (%s)\n", rs.rows.size(),
              rs.stats.ToString().c_str());

  // 4. Forecast: where will the first vessel be in 10 minutes?
  const EntityId vessel = traces.front().entity_id;
  GeoPoint in_ten;
  if (engine.predictor().Predict(vessel, 10 * kMinute, &in_ten)) {
    std::printf("vessel %u forecast @ +10 min: %s\n", vessel,
                ToString(in_ten).c_str());
  }
  return 0;
}
